let src = Logs.Src.create "dlearn.subsumption"

module Log = (val Logs.src_log src : Logs.LOG)
module Obs = Dlearn_obs.Obs

type outcome =
  | Subsumed of Substitution.t
  | Not_subsumed
  | Budget_exhausted

type engine = [ `Csp | `Backtrack | `Sat ]

(* DLEARN_SUBSUMPTION=backtrack (or bt/0/off) pins the reference
   backtracking engine, =sat the ground-instantiation SAT engine;
   anything else — including unset — selects the CSP kernel. Read at
   each call, like the other rollout variables, so test matrices can
   flip it without plumbing a flag. *)
let default_engine () : engine =
  match Sys.getenv_opt "DLEARN_SUBSUMPTION" with
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "backtrack" | "bt" | "0" | "off" -> `Backtrack
      | "sat" -> `Sat
      | _ -> `Csp)
  | None -> `Csp

let engine_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "csp" -> Some `Csp
  | "backtrack" | "bt" -> Some `Backtrack
  | "sat" -> Some `Sat
  | _ -> None

let engine_name = function
  | `Csp -> "csp"
  | `Backtrack -> "backtrack"
  | `Sat -> "sat"

(* The one source of truth for every engine-selection surface (CLI enum,
   help text, env parsing above, CI matrices): name in canonical
   spelling, paired with its variant. *)
let all_engines : (string * engine) list =
  [ ("csp", `Csp); ("backtrack", `Backtrack); ("sat", `Sat) ]

exception Exhausted

module IntSet = Set.Make (Int)

(* The target clause D, preprocessed for fast candidate enumeration. *)
type target = {
  d_literals : Literal.t array; (* index 0 is the head *)
  rels_by_pred : (string, int list) Hashtbl.t;
  repairs_by_origin : (string, int list) Hashtbl.t;
  sim_ids : int list;
  env : Clause_env.t;
  attached_repairs : IntSet.t array;
      (* for each non-repair literal id, the ids of D repair literals
         connected to it per Definition 4.4's connectivity *)
  term_tab : Term.t array;
      (* D's terms interned to dense ids; the CSP kernel's binding array
         holds indexes into this table *)
  key_tids : int array array;
      (* per D literal, its key terms (arguments; subject/replacement for
         repairs) as term ids — the kernel matches on these ints and never
         re-reads the literals *)
  sat_cache : Sat_subsumption.cache;
      (* the [`Sat] engine's per-target incremental solver, shared by
         every candidate of the ARMG chain tested against this target *)
}

let literal_key_terms = function
  | Literal.Repair { subject; replacement; _ } -> [ subject; replacement ]
  | l -> Literal.terms l

(* Connectivity of repair literals (Def. 4.4): a repair literal is
   connected to a non-repair literal L when its subject or replacement
   occurs in L, or occurs in the arguments of a repair literal connected
   to L — i.e. the union of the repair-graph components (edges: shared
   key terms) that touch L directly. Computed on interned term ids with a
   union-find over the repair literals, linear-ish in clause size, rather
   than the old per-literal fixpoint that rescanned the full repair list
   quadratically. [prepare] runs once per ground bottom clause per
   coverage call, so this is on the hot path. *)
let repair_connectivity_sets d_literals =
  let n = Array.length d_literals in
  let repair_ids = ref [] in
  for id = n - 1 downto 0 do
    match d_literals.(id) with
    | Literal.Repair _ -> repair_ids := id :: !repair_ids
    | _ -> ()
  done;
  match !repair_ids with
  | [] -> Array.make n IntSet.empty
  | repair_ids ->
      let reps = Array.of_list repair_ids in
      let nrep = Array.length reps in
      (* term id -> positions (into reps) of the repairs keyed by it *)
      let term_ids : int Term.Tbl.t = Term.Tbl.create (4 * nrep) in
      let nterms = ref 0 in
      let tid t =
        match Term.Tbl.find_opt term_ids t with
        | Some i -> i
        | None ->
            let i = !nterms in
            incr nterms;
            Term.Tbl.add term_ids t i;
            i
      in
      let key_tids =
        Array.map
          (fun id -> List.map tid (literal_key_terms d_literals.(id)))
          reps
      in
      let by_tid = Array.make !nterms [] in
      Array.iteri
        (fun pos tids -> List.iter (fun t -> by_tid.(t) <- pos :: by_tid.(t)) tids)
        key_tids;
      (* union-find over repair positions: shared key term => same cluster *)
      let parent = Array.init nrep Fun.id in
      let rec find i =
        if parent.(i) = i then i
        else begin
          let r = find parent.(i) in
          parent.(i) <- r;
          r
        end
      in
      let union a b =
        let ra = find a and rb = find b in
        if ra <> rb then parent.(ra) <- rb
      in
      Array.iter
        (function
          | [] -> ()
          | first :: rest -> List.iter (fun p -> union first p) rest)
        by_tid;
      (* root -> the D literal ids of its cluster *)
      let clusters = Hashtbl.create 8 in
      Array.iteri
        (fun pos id ->
          let root = find pos in
          let cur =
            Option.value ~default:IntSet.empty (Hashtbl.find_opt clusters root)
          in
          Hashtbl.replace clusters root (IntSet.add id cur))
        reps;
      Array.init n (fun id ->
          match d_literals.(id) with
          | Literal.Repair _ -> IntSet.empty
          | l ->
              List.fold_left
                (fun acc t ->
                  match Term.Tbl.find_opt term_ids t with
                  | None -> acc
                  | Some ti ->
                      List.fold_left
                        (fun acc pos ->
                          IntSet.union acc
                            (Hashtbl.find clusters (find pos)))
                        acc by_tid.(ti))
                IntSet.empty (Literal.terms l))

let prepare (d : Clause.t) =
  let d_literals = Array.of_list (d.head :: d.body) in
  let n = Array.length d_literals in
  let rels_by_pred = Hashtbl.create 16 in
  let repairs_by_origin = Hashtbl.create 16 in
  let sim_ids = ref [] in
  (* Cons per literal, one reversal per bucket afterwards: buckets come
     out in ascending literal id, i.e. candidates enumerate in the target
     clause's body order (head first) — pinned by a test. The old scheme
     re-read each bucket through the table on every push. *)
  let push tbl key id =
    match Hashtbl.find_opt tbl key with
    | Some ids -> ids := id :: !ids
    | None -> Hashtbl.add tbl key (ref [ id ])
  in
  let staged_rels = Hashtbl.create 16 in
  let staged_repairs = Hashtbl.create 16 in
  for id = 0 to n - 1 do
    match d_literals.(id) with
    | Literal.Rel { pred; _ } -> push staged_rels pred id
    | Literal.Repair r -> push staged_repairs (Literal.origin_to_string r.origin) id
    | Literal.Sim _ -> sim_ids := id :: !sim_ids
    | Literal.Eq _ | Literal.Neq _ -> ()
  done;
  Hashtbl.iter (fun k ids -> Hashtbl.replace rels_by_pred k (List.rev !ids)) staged_rels;
  Hashtbl.iter
    (fun k ids -> Hashtbl.replace repairs_by_origin k (List.rev !ids))
    staged_repairs;
  sim_ids := List.rev !sim_ids;
  (* Intern D's key terms once: targets are prepared once and matched
     against many clauses, so the kernel never hashes a D term again. *)
  let term_ids : int Term.Tbl.t = Term.Tbl.create (4 * n) in
  let terms_rev = ref [] in
  let nterms = ref 0 in
  let tid t =
    match Term.Tbl.find_opt term_ids t with
    | Some i -> i
    | None ->
        let i = !nterms in
        incr nterms;
        Term.Tbl.add term_ids t i;
        terms_rev := t :: !terms_rev;
        i
  in
  let key_tids =
    Array.map
      (fun l -> Array.of_list (List.map tid (literal_key_terms l)))
      d_literals
  in
  {
    d_literals;
    rels_by_pred;
    repairs_by_origin;
    sim_ids = !sim_ids;
    env = Clause_env.of_body (d.head :: d.body);
    attached_repairs = repair_connectivity_sets d_literals;
    term_tab = Array.of_list (List.rev !terms_rev);
    key_tids;
    sat_cache = Sat_subsumption.new_cache ();
  }

(* A constant of C matches a term of D when they are equal, or when D's
   equality literals identify them — ground bottom clauses relate split
   occurrences of one value through explicit equality literals. *)
let unify_term env theta c_term d_term =
  match c_term with
  | Term.Const _ ->
      if Clause_env.eq env c_term d_term then Some theta else None
  | Term.Var v -> Substitution.bind theta v d_term

let unify_args env theta c_args d_args =
  if Array.length c_args <> Array.length d_args then None
  else
    let rec go theta i =
      if i >= Array.length c_args then Some theta
      else
        match unify_term env theta c_args.(i) d_args.(i) with
        | Some theta' -> go theta' (i + 1)
        | None -> None
    in
    go theta 0

(* Candidate (θ', image-id option) extensions for one literal of C. *)
let candidates target budget theta literal =
  let spend n =
    budget := !budget - n;
    if !budget < 0 then raise Exhausted
  in
  match literal with
  | Literal.Rel { pred; args } ->
      let ids = Option.value ~default:[] (Hashtbl.find_opt target.rels_by_pred pred) in
      spend (List.length ids);
      List.filter_map
        (fun id ->
          match target.d_literals.(id) with
          | Literal.Rel { args = dargs; _ } ->
              Option.map (fun th -> (th, Some id)) (unify_args target.env theta args dargs)
          | _ -> None)
        ids
  | Literal.Repair r ->
      let key = Literal.origin_to_string r.origin in
      let ids =
        Option.value ~default:[] (Hashtbl.find_opt target.repairs_by_origin key)
      in
      spend (List.length ids);
      List.filter_map
        (fun id ->
          match target.d_literals.(id) with
          | Literal.Repair dr -> (
              match unify_term target.env theta r.subject dr.subject with
              | None -> None
              | Some th -> (
                  match unify_term target.env th r.replacement dr.replacement with
                  | None -> None
                  | Some th' -> Some (th', Some id)))
          | _ -> None)
        ids
  | Literal.Sim (x, y) ->
      let tx = Substitution.apply_term theta x
      and ty = Substitution.apply_term theta y in
      let via_env =
        if Term.is_var tx || Term.is_var ty then []
        else if Clause_env.sim target.env tx ty then [ (theta, None) ]
        else []
      in
      spend (List.length target.sim_ids);
      let via_literals =
        List.concat_map
          (fun id ->
            match target.d_literals.(id) with
            | Literal.Sim (dx, dy) ->
                let attempt a b =
                  match unify_term target.env theta x a with
                  | None -> None
                  | Some th -> (
                      match unify_term target.env th y b with
                      | None -> None
                      | Some th' -> Some (th', Some id))
                in
                List.filter_map Fun.id [ attempt dx dy; attempt dy dx ]
            | _ -> [])
          target.sim_ids
      in
      via_env @ via_literals
  | Literal.Eq _ | Literal.Neq _ -> assert false (* handled as checks *)

(* Resolve Eq/Neq check literals once every generative literal is mapped.
   Unbound variables are grouped by the Eq literals and each group bound
   to its bound member, or to a fresh constant distinct from everything. *)
let resolve_checks target theta checks =
  let module UF = Hashtbl in
  let parent : (string, string) UF.t = UF.create 8 in
  let rec find v =
    match UF.find_opt parent v with
    | None -> v
    | Some p ->
        let r = find p in
        UF.replace parent v r;
        r
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then UF.replace parent ra rb
  in
  (* A term's status under θ: [`Img] is a fixed term of D — a constant,
     or a variable of D standing as the image of a bound C variable,
     which only the env closure can relate to anything — while
     [`Unbound] is a C variable θ left free, which the class scheme may
     set to any value. Distinguishing the two by θ-membership (not by
     whether the applied term is a variable) keeps the verdict
     independent of how the checks were grouped into components. *)
  let classify t =
    match t with
    | Term.Var v when not (Substitution.mem theta v) -> `Unbound v
    | _ -> `Img (Substitution.apply_term theta t)
  in
  (* First pass: union unbound variables related by Eq checks. *)
  List.iter
    (function
      | Literal.Eq (x, y) -> (
          match (classify x, classify y) with
          | `Unbound u, `Unbound v -> union u v
          | _ -> ())
      | _ -> ())
    checks;
  (* Second pass: bind each class — to a bound member's image if an Eq
     check links it to one, otherwise to a fresh constant. *)
  let class_binding : (string, Term.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (function
      | Literal.Eq (x, y) -> (
          match (classify x, classify y) with
          | `Unbound u, `Img t | `Img t, `Unbound u ->
              Hashtbl.replace class_binding (find u) t
          | _ -> ())
      | _ -> ())
    checks;
  let fresh_counter = ref 0 in
  let resolve term =
    match classify term with
    | `Img t -> t
    | `Unbound v -> (
        let root = find v in
        match Hashtbl.find_opt class_binding root with
        | Some t -> t
        | None ->
            incr fresh_counter;
            let c =
              Term.Const
                (Dlearn_relation.Value.String
                   (Printf.sprintf "\xe2\x8a\xa5fresh:%s" root))
            in
            Hashtbl.replace class_binding root c;
            c)
  in
  List.for_all
    (function
      | Literal.Eq (x, y) -> Clause_env.eq target.env (resolve x) (resolve y)
      | Literal.Neq (x, y) -> Clause_env.neq target.env (resolve x) (resolve y)
      | _ -> true)
    checks

let check_repair_connectivity target image =
  (* Every D repair literal attached to a mapped non-repair literal must be
     mapped itself. The head of D (id 0) is always mapped. *)
  let mapped_non_repair = ref (IntSet.singleton 0) in
  let mapped_repairs = ref IntSet.empty in
  IntSet.iter
    (fun id ->
      match target.d_literals.(id) with
      | Literal.Repair _ -> mapped_repairs := IntSet.add id !mapped_repairs
      | _ -> mapped_non_repair := IntSet.add id !mapped_non_repair)
    image;
  IntSet.for_all
    (fun id -> IntSet.subset target.attached_repairs.(id) !mapped_repairs)
    !mapped_non_repair

(* Exhaustive chronological search with the repair-connectivity
   condition enforced at every complete assignment — the naive engine's
   search, shared with [`Backtrack] as its completeness fallback.
   The decomposed engines commit each independent fragment's first
   solution, which is complete for plain satisfiability but not under
   the global connectivity condition: a rejected image might have been
   fixed by a different solution of an already-committed sibling
   fragment. Rather than couple the fragments, a decomposed engine
   whose witness fails the condition re-decides the instance with a
   search that backtracks *through* the check instead of post-filtering
   its first witness: [`Backtrack] re-runs this one (self-contained, so
   the reference engine owes nothing to the solver), while [`Csp]
   delegates to the SAT engine, which is much faster on the
   repair-heavy instances that land here.

   Body order is kept as-is: C's relational literals carry the join
   variables, so they prune hardest; hoisting the repair literals to the
   front (to finalize the mapped-repair set early) was measured to
   enumerate near-cartesian repair placements before any rel constrains
   the shared subject variables — far slower on the bottom-clause
   workloads that actually trigger the fallback.

   Instead, connectivity is propagated as an achievability bound: at
   each node the obligations accumulated so far (attached repairs of
   every mapped non-repair literal, plus the head's) must be coverable
   by the repairs already placed together with what the *remaining*
   repair literals could still place — per-suffix unions of their
   static candidate buckets, computed once up front. A branch that maps
   a rel whose attached repairs can no longer all be placed dies
   immediately instead of at full assignment; in particular a candidate
   with no repair literals at all refutes in one step per branch. *)
let search_exhaustive target budget ~repair_connectivity (c : Clause.t) theta0 =
  let gens, checks =
    List.partition
      (function
        | Literal.Rel _ | Literal.Repair _ | Literal.Sim _ -> true
        | Literal.Eq _ | Literal.Neq _ -> false)
      c.body
  in
  (* suffix_placeable.(i): every D repair id some repair literal among
     gens[i..] could still map to, ignoring bindings — a sound
     overapproximation (candidate buckets only shrink under theta). *)
  let suffix_placeable =
    if not repair_connectivity then [||]
    else begin
      let n = List.length gens in
      let arr = Array.make (n + 1) IntSet.empty in
      List.iteri
        (fun i l ->
          let bucket =
            match l with
            | Literal.Repair { origin; _ } ->
                List.fold_left
                  (fun s id -> IntSet.add id s)
                  IntSet.empty
                  (Option.value ~default:[]
                     (Hashtbl.find_opt target.repairs_by_origin
                        (Literal.origin_to_string origin)))
            | _ -> IntSet.empty
          in
          (* filled back-to-front below; stash each bucket first *)
          arr.(i) <- bucket)
        gens;
      for i = n - 1 downto 0 do
        arr.(i) <- IntSet.union arr.(i) arr.(i + 1)
      done;
      arr
    end
  in
  let head_required =
    if repair_connectivity then target.attached_repairs.(0) else IntSet.empty
  in
  let rec search i remaining theta required placed image =
    if
      repair_connectivity
      && not (IntSet.subset required (IntSet.union placed suffix_placeable.(i)))
    then None
    else
      match remaining with
      | [] ->
          if not (resolve_checks target theta checks) then None
          else if
            repair_connectivity && not (check_repair_connectivity target image)
          then None
          else Some theta
      | l :: rest ->
          let rec try_candidates = function
            | [] -> None
            | (theta', id_opt) :: more -> (
                let required', placed', image' =
                  match id_opt with
                  | None -> (required, placed, image)
                  | Some id ->
                      let required', placed' =
                        if not repair_connectivity then (required, placed)
                        else
                          match l with
                          | Literal.Repair _ -> (required, IntSet.add id placed)
                          | _ ->
                              ( IntSet.union required
                                  target.attached_repairs.(id),
                                placed )
                      in
                      (required', placed', IntSet.add id image)
                in
                match search (i + 1) rest theta' required' placed' image' with
                | Some _ as ok -> ok
                | None -> try_candidates more)
          in
          try_candidates (candidates target budget theta l)
  in
  search 0 gens theta0 head_required IntSet.empty IntSet.empty

(* The [`Sat] engine lives in {!Sat_subsumption}, which depends only on
   the term/clause layer; it sees the prepared target through this view
   — the raw index fields plus closures over the private finish logic,
   so both engines share [resolve_checks] and the connectivity sets.
   Defined here, before the decomposed engines, because they delegate
   their completeness fallback to it (see [subsumes_target_csp]). *)
let sat_view (t : target) : Sat_subsumption.view =
  {
    Sat_subsumption.d_literals = t.d_literals;
    rel_ids =
      (fun p -> Option.value ~default:[] (Hashtbl.find_opt t.rels_by_pred p));
    repair_ids =
      (fun o ->
        Option.value ~default:[] (Hashtbl.find_opt t.repairs_by_origin o));
    sim_ids = t.sim_ids;
    env = t.env;
    term_tab = t.term_tab;
    key_tids = t.key_tids;
    connectivity_ok =
      (fun ids ->
        check_repair_connectivity t
          (List.fold_left (fun s i -> IntSet.add i s) IntSet.empty ids));
    attached_repairs = (fun id -> IntSet.elements t.attached_repairs.(id));
    resolve_residue = (fun theta checks -> resolve_checks t theta checks);
    cache = t.sat_cache;
  }

let subsumes_target_sat ?budget ?repair_connectivity (c : Clause.t)
    (target : target) =
  match Sat_subsumption.subsumes ?budget ?repair_connectivity (sat_view target) c with
  | `Subsumed theta -> Subsumed theta
  | `Not_subsumed -> Not_subsumed
  | `Budget_exhausted -> Budget_exhausted

let is_check = function
  | Literal.Eq _ | Literal.Neq _ -> true
  | Literal.Rel _ | Literal.Sim _ | Literal.Repair _ -> false

(* ------------------------------------------------------------------ *)
(* Per-solve counters for the CSP kernel, aggregated process-wide on the
   Obs registry so the bench and the learner can report them across a
   domain pool (names under [subsumption.], see docs/OBSERVABILITY.md). *)

module Stats = struct
  let solves = Obs.counter "subsumption.solves"
  let nodes = Obs.counter "subsumption.nodes"
  let propagations = Obs.counter "subsumption.propagations"
  let wipeouts = Obs.counter "subsumption.wipeouts"
  let setup_ns = Obs.counter "subsumption.setup_ns"
  let search_ns = Obs.counter "subsumption.search_ns"
end

type stats = {
  solves : int;
  nodes : int;
  propagations : int;
  wipeouts : int;
  setup_seconds : float;
  search_seconds : float;
}

let stats () =
  {
    solves = Obs.value Stats.solves;
    nodes = Obs.value Stats.nodes;
    propagations = Obs.value Stats.propagations;
    wipeouts = Obs.value Stats.wipeouts;
    setup_seconds = float_of_int (Obs.value Stats.setup_ns) /. 1e9;
    search_seconds = float_of_int (Obs.value Stats.search_ns) /. 1e9;
  }

let reset_stats () =
  List.iter Obs.reset_counter
    [
      Stats.solves; Stats.nodes; Stats.propagations; Stats.wipeouts;
      Stats.setup_ns; Stats.search_ns;
    ]

let log_stats () =
  let s = stats () in
  Log.info (fun m ->
      m
        "csp kernel: %d solves, %d nodes, %d propagations, %d domain \
         wipeouts, %.3fs setup, %.3fs search"
        s.solves s.nodes s.propagations s.wipeouts s.setup_seconds
        s.search_seconds)

(* ------------------------------------------------------------------ *)
(* CSP kernel: per-(C, target) setup interns C's variables and D's terms
   to dense ints and precomputes each generative literal's candidate
   table; the search runs over a mutable binding array with an undo
   trail, forward-checks the candidate domains of connected literals on
   every assignment and selects by minimum remaining domain. Components
   of the shared-unbound-variable graph are computed once per solve and
   solved independently.                                                 *)

(* One candidate match for a generative literal: the D literal it maps to
   ([d_id] = -1 for the pseudo-candidate satisfying a similarity literal
   through the environment's closure once both sides are bound) and the
   variable bindings it entails, as (var id, term id) pairs over the
   variables unbound at setup. *)
type cand = {
  d_id : int;
  binds : (int * int) array;
}

type csp_lit = {
  lit : Literal.t;
  cands : cand array;
  alive : bool array;
  mutable alive_n : int;
  lvars : int array; (* ids of this literal's setup-unbound variables *)
  env_k : int; (* index of the environment pseudo-candidate, or -1 *)
}

exception Reject
exception Dead

let subsumes_target_csp ?(budget = 200_000) ?(repair_connectivity = true)
    (c : Clause.t) (target : target) =
  let t0 = Unix.gettimeofday () in
  let nodes = ref 0 and props = ref 0 and wipes = ref 0 in
  let nbinds = ref 0 in
  let setup_end = ref t0 in
  let budget = ref budget in
  let spend n =
    budget := !budget - n;
    if !budget < 0 then raise Exhausted
  in
  (* --- interning --- *)
  let cvar_names = Array.of_list (Clause.vars c) in
  let nvars = Array.length cvar_names in
  let var_ids = Hashtbl.create (max 16 (2 * nvars)) in
  Array.iteri (fun i v -> Hashtbl.add var_ids v i) cvar_names;
  let vid v = Hashtbl.find var_ids v in
  let term_tab = target.term_tab in
  let binding = Array.make (max nvars 1) (-1) in
  let resolve_term = function
    | Term.Const _ as t -> Some t
    | Term.Var v ->
        let i = vid v in
        if binding.(i) >= 0 then Some term_tab.(binding.(i)) else None
  in
  let current_subst () =
    let th = ref Substitution.empty in
    for i = 0 to nvars - 1 do
      if binding.(i) >= 0 then
        th := Substitution.add !th cvar_names.(i) term_tab.(binding.(i))
    done;
    !th
  in
  (* --- head unification seeds the binding array --- *)
  let head_ok =
    match (c.head, target.d_literals.(0)) with
    | ( Literal.Rel { pred = p1; args = a1 },
        Literal.Rel { pred = p2; args = a2 } )
      when String.equal p1 p2 && Array.length a1 = Array.length a2 -> (
        let dk = target.key_tids.(0) in
        try
          Array.iteri
            (fun i ct ->
              match ct with
              | Term.Const _ ->
                  if not (Clause_env.eq target.env ct a2.(i)) then raise Reject
              | Term.Var v ->
                  let iv = vid v in
                  let t = dk.(i) in
                  if binding.(iv) < 0 then binding.(iv) <- t
                  else if binding.(iv) <> t then raise Reject)
            a1;
          true
        with Reject -> false)
    | _ -> false
  in
  let record outcome =
    let t2 = Unix.gettimeofday () in
    let ns dt = int_of_float (dt *. 1e9) in
    Obs.incr Stats.solves;
    Obs.add Stats.nodes !nodes;
    Obs.add Stats.propagations !props;
    Obs.add Stats.wipeouts !wipes;
    Obs.add Stats.setup_ns (ns (!setup_end -. t0));
    Obs.add Stats.search_ns (ns (t2 -. !setup_end));
    (* Per-solve spans would be too hot for the histogram path, but while
       a trace is being recorded the solve's existing clock is worth an
       event; solves are the leaves every other span decomposes into. *)
    if Obs.recording () then
      Obs.emit_event
        ~args:[ ("nodes", string_of_int !nodes) ]
        ~name:"subsumption.solve"
        ~start_ns:(ns t0) ~dur_ns:(ns (t2 -. t0)) ();
    Log.debug (fun m ->
        m "csp solve: %d nodes, %d propagations, %d wipeouts, %.1fus setup, %.1fus search"
          !nodes !props !wipes
          ((!setup_end -. t0) *. 1e6)
          ((t2 -. !setup_end) *. 1e6));
    outcome
  in
  if not head_ok then begin
    setup_end := Unix.gettimeofday ();
    record Not_subsumed
  end
  else begin
    try
      (* --- candidate tables --- *)
      let gens, checks = List.partition (fun l -> not (is_check l)) c.body in
      let gen_arr = Array.of_list gens in
      let ng = Array.length gen_arr in
      (* C-side arguments pre-resolved once per literal: a constant keeps
         its term (compared through the env closure), a variable becomes
         its dense id. Candidates then match descriptor against the
         target's interned key ids — pure int work per candidate. *)
      let descr (t : Term.t) =
        match t with Term.Const _ -> `C t | Term.Var v -> `V (vid v)
      in
      let unify_descr acc d dt_id =
        match d with
        | `C ct ->
            if not (Clause_env.eq target.env ct term_tab.(dt_id)) then
              raise Reject
        | `V iv ->
            if binding.(iv) >= 0 then begin
              if binding.(iv) <> dt_id then raise Reject
            end
            else begin
              let rec chk = function
                | [] -> acc := (iv, dt_id) :: !acc
                | (iv', t') :: rest ->
                    if iv' = iv then begin
                      if t' <> dt_id then raise Reject
                    end
                    else chk rest
              in
              chk !acc
            end
      in
      let build_cands (l : Literal.t) : cand list =
        match l with
        | Literal.Rel { pred; args } ->
            let ids =
              Option.value ~default:[]
                (Hashtbl.find_opt target.rels_by_pred pred)
            in
            spend (List.length ids);
            let ds = Array.map descr args in
            let nargs = Array.length ds in
            List.filter_map
              (fun id ->
                let dk = target.key_tids.(id) in
                if Array.length dk <> nargs then None
                else
                  try
                    let acc = ref [] in
                    for i = 0 to nargs - 1 do
                      unify_descr acc ds.(i) dk.(i)
                    done;
                    Some { d_id = id; binds = Array.of_list (List.rev !acc) }
                  with Reject -> None)
              ids
        | Literal.Repair r ->
            let key = Literal.origin_to_string r.origin in
            let ids =
              Option.value ~default:[]
                (Hashtbl.find_opt target.repairs_by_origin key)
            in
            spend (List.length ids);
            let ds = descr r.subject and dr = descr r.replacement in
            List.filter_map
              (fun id ->
                let dk = target.key_tids.(id) in
                try
                  let acc = ref [] in
                  unify_descr acc ds dk.(0);
                  unify_descr acc dr dk.(1);
                  Some { d_id = id; binds = Array.of_list (List.rev !acc) }
                with Reject -> None)
              ids
        | Literal.Sim (x, y) ->
            spend (List.length target.sim_ids);
            let dx = descr x and dy = descr y in
            let via_literals =
              List.concat_map
                (fun id ->
                  let dk = target.key_tids.(id) in
                  let attempt a b =
                    try
                      let acc = ref [] in
                      unify_descr acc dx a;
                      unify_descr acc dy b;
                      Some { d_id = id; binds = Array.of_list (List.rev !acc) }
                    with Reject -> None
                  in
                  List.filter_map Fun.id
                    [ attempt dk.(0) dk.(1); attempt dk.(1) dk.(0) ])
                target.sim_ids
            in
            (* The environment pseudo-candidate. Decidable at setup (both
               sides resolved): enumerate it first, like the reference
               engines — its empty image also biases the first witness
               toward passing the connectivity check, sparing the strict
               re-search. Undecidable: it becomes a
               *deferred* branch, validated by forward checking as its
               sides bind and at the end of the component; it goes last
               so the constraining D-literal candidates (which bind the
               unbound side) are explored first — the reference engine
               has no environment branch at all for an unresolved
               similarity at its decision point. *)
            let env_cand = { d_id = -1; binds = [||] } in
            (match (resolve_term x, resolve_term y) with
            | Some rx, _ when Term.is_var rx -> via_literals
            | _, Some ry when Term.is_var ry -> via_literals
            | Some rx, Some ry ->
                if Clause_env.sim target.env rx ry then env_cand :: via_literals
                else via_literals
            | _ -> via_literals @ [ env_cand ])
        | Literal.Eq _ | Literal.Neq _ -> assert false
      in
      let lits = Array.make ng None in
      let empty_domain = ref false in
      let gi = ref 0 in
      while (not !empty_domain) && !gi < ng do
        let l = gen_arr.(!gi) in
        let cands = Array.of_list (build_cands l) in
        if Array.length cands = 0 then empty_domain := true
        else begin
          let lvars =
            List.filter_map
              (fun v ->
                let iv = vid v in
                if binding.(iv) < 0 then Some iv else None)
              (Literal.vars l)
          in
          let env_k = ref (-1) in
          Array.iteri (fun k cnd -> if cnd.d_id < 0 then env_k := k) cands;
          lits.(!gi) <-
            Some
              {
                lit = l;
                cands;
                alive = Array.make (Array.length cands) true;
                alive_n = Array.length cands;
                lvars = Array.of_list lvars;
                env_k = !env_k;
              };
          incr gi
        end
      done;
      if !empty_domain then begin
        setup_end := Unix.gettimeofday ();
        record Not_subsumed
      end
      else begin
        let lits = Array.map Option.get lits in
        (* --- checks: decide the ground ones now, watch the rest ---
           An image that is itself a variable of D stays [`Unknown]: the
           reference engine likewise leaves those to the union-find
           resolution of [resolve_checks]. *)
        let eval_check l =
          match l with
          | Literal.Eq (x, y) -> (
              match (resolve_term x, resolve_term y) with
              | Some tx, Some ty
                when not (Term.is_var tx || Term.is_var ty) ->
                  if Clause_env.eq target.env tx ty then `Sat else `Unsat
              | _ -> `Unknown)
          | Literal.Neq (x, y) -> (
              match (resolve_term x, resolve_term y) with
              | Some tx, Some ty
                when not (Term.is_var tx || Term.is_var ty) ->
                  if Clause_env.neq target.env tx ty then `Sat else `Unsat
              | _ -> `Unknown)
          | _ -> `Unknown
        in
        let failed_check = ref false in
        let pending_checks =
          List.filter
            (fun l ->
              match eval_check l with
              | `Sat -> false
              | `Unsat ->
                  failed_check := true;
                  false
              | `Unknown -> true)
            checks
        in
        if !failed_check then begin
          setup_end := Unix.gettimeofday ();
          record Not_subsumed
        end
        else begin
          let chk_arr = Array.of_list pending_checks in
          let nchk = Array.length chk_arr in
          let chk_state = Array.make (max nchk 1) 0 in
          let chk_vars =
            Array.map
              (fun l ->
                List.filter_map
                  (fun v ->
                    let iv = vid v in
                    if binding.(iv) < 0 then Some iv else None)
                  (Literal.vars l)
                |> Array.of_list)
              chk_arr
          in
          (* --- var -> literal adjacency --- *)
          let gen_watch = Array.make (max nvars 1) [] in
          let chk_watch = Array.make (max nvars 1) [] in
          Array.iteri
            (fun j cl ->
              Array.iter (fun v -> gen_watch.(v) <- j :: gen_watch.(v)) cl.lvars)
            lits;
          Array.iteri
            (fun ci vs ->
              Array.iter (fun v -> chk_watch.(v) <- ci :: chk_watch.(v)) vs)
            chk_vars;
          Array.iteri (fun v l -> gen_watch.(v) <- List.rev l) gen_watch;
          Array.iteri (fun v l -> chk_watch.(v) <- List.rev l) chk_watch;
          (* --- initial connected-components split on the int adjacency
             (the search re-splits dynamically as bindings land) --- *)
          let nnodes = ng + nchk in
          let parent = Array.init (max nnodes 1) Fun.id in
          let rec find i =
            if parent.(i) = i then i
            else begin
              let r = find parent.(i) in
              parent.(i) <- r;
              r
            end
          in
          let union a b =
            let ra = find a and rb = find b in
            if ra <> rb then parent.(ra) <- rb
          in
          let var_first = Array.make (max nvars 1) (-1) in
          let link node v =
            if var_first.(v) < 0 then var_first.(v) <- node
            else union node var_first.(v)
          in
          Array.iteri (fun j cl -> Array.iter (link j) cl.lvars) lits;
          Array.iteri (fun ci vs -> Array.iter (link (ng + ci)) vs) chk_vars;
          let comp_tbl = Hashtbl.create 8 in
          for node = nnodes - 1 downto 0 do
            let root = find node in
            let gens', chks' =
              Option.value ~default:([], []) (Hashtbl.find_opt comp_tbl root)
            in
            if node < ng then Hashtbl.replace comp_tbl root (node :: gens', chks')
            else Hashtbl.replace comp_tbl root (gens', (node - ng) :: chks')
          done;
          let comps =
            Hashtbl.fold (fun _ c acc -> c :: acc) comp_tbl []
            |> List.sort
                 (fun (g1, c1) (g2, c2) ->
                   match
                     Int.compare
                       (List.length g1 + List.length c1)
                       (List.length g2 + List.length c2)
                   with
                   | 0 ->
                       Int.compare
                         (match (g1, c1) with
                         | g :: _, _ -> g
                         | [], ch :: _ -> ng + ch
                         | [], [] -> 0)
                         (match (g2, c2) with
                         | g :: _, _ -> g
                         | [], ch :: _ -> ng + ch
                         | [], [] -> 0)
                   | c -> c)
          in
          setup_end := Unix.gettimeofday ();
          (* --- search --- *)
          let assigned = Array.make (max ng 1) (-1) in
          let tr_kind = ref (Array.make 256 0) in
          let tr_a = ref (Array.make 256 0) in
          let tr_b = ref (Array.make 256 0) in
          let tr_len = ref 0 in
          let push kind a b =
            let n = !tr_len in
            if n = Array.length !tr_kind then begin
              let grow arr =
                let bigger = Array.make (2 * n) 0 in
                Array.blit !arr 0 bigger 0 n;
                arr := bigger
              in
              grow tr_kind;
              grow tr_a;
              grow tr_b
            end;
            !tr_kind.(n) <- kind;
            !tr_a.(n) <- a;
            !tr_b.(n) <- b;
            tr_len := n + 1
          in
          let undo_to mark =
            while !tr_len > mark do
              decr tr_len;
              let i = !tr_len in
              match !tr_kind.(i) with
              | 0 -> binding.(!tr_a.(i)) <- -1
              | 1 ->
                  let cl = lits.(!tr_a.(i)) in
                  cl.alive.(!tr_b.(i)) <- true;
                  cl.alive_n <- cl.alive_n + 1
              | 2 -> chk_state.(!tr_a.(i)) <- 0
              | _ -> assigned.(!tr_a.(i)) <- -1
            done
          in
          let kill j k =
            let cl = lits.(j) in
            cl.alive.(k) <- false;
            cl.alive_n <- cl.alive_n - 1;
            incr props;
            push 1 j k;
            if cl.alive_n = 0 then begin
              incr wipes;
              raise Dead
            end
          in
          (* Forward checking: prune the candidate domains of unassigned
             literals watching [v], and evaluate the checks that just
             became ground. *)
          (* The environment branch of a similarity literal is decidable
             only once both sides resolve; until then an assignment to it
             is deferred. [`Unsat] fails the branch, [`Sat]/[`Unknown]
             leave it pending (an [`Unknown] leftover is rejected at the
             end of the component). *)
          let eval_deferred j =
            match lits.(j).lit with
            | Literal.Sim (x, y) -> (
                match (resolve_term x, resolve_term y) with
                | Some rx, _ when Term.is_var rx -> `Unsat
                | _, Some ry when Term.is_var ry -> `Unsat
                | Some rx, Some ry ->
                    if Clause_env.sim target.env rx ry then `Sat else `Unsat
                | _ -> `Unknown)
            | _ -> `Unsat
          in
          let propagate v =
            let t = binding.(v) in
            List.iter
              (fun j ->
                if assigned.(j) >= 0 then begin
                  if
                    lits.(j).cands.(assigned.(j)).d_id < 0
                    && eval_deferred j = `Unsat
                  then raise Dead
                end
                else begin
                  let cl = lits.(j) in
                  for k = 0 to Array.length cl.cands - 1 do
                    if cl.alive.(k) then begin
                      spend 1;
                      let cnd = cl.cands.(k) in
                      if cnd.d_id >= 0 then begin
                        let nb = Array.length cnd.binds in
                        let rec conflict i =
                          if i >= nb then false
                          else
                            let v', t' = cnd.binds.(i) in
                            if v' = v && t' <> t then true else conflict (i + 1)
                        in
                        if conflict 0 then kill j k
                      end
                      else if eval_deferred j = `Unsat then
                        (* environment pseudo-candidate now refutable *)
                        kill j k
                    end
                  done
                end)
              gen_watch.(v);
            List.iter
              (fun ci ->
                if chk_state.(ci) = 0 then
                  match eval_check chk_arr.(ci) with
                  | `Unsat -> raise Dead
                  | `Sat ->
                      chk_state.(ci) <- 1;
                      push 2 ci 0
                  | `Unknown -> ())
              chk_watch.(v)
          in
          let apply_cand j (cnd : cand) =
            if cnd.d_id < 0 then begin
              (* environment branch: decide it now if both sides are
                 bound, otherwise leave it deferred *)
              if eval_deferred j = `Unsat then raise Dead
            end
            else
              Array.iter
                (fun (v, t) ->
                  if binding.(v) < 0 then begin
                    binding.(v) <- t;
                    incr nbinds;
                    push 0 v 0;
                    propagate v
                  end
                  else if binding.(v) <> t then raise Dead)
                cnd.binds
          in
          (* Min-remaining-domain selection, lowest body index on ties.
             Similarity literals compete with the atoms: in a bottom
             clause they are the joins crossing sources, and selecting
             one as soon as forward checking has shrunk its table binds
             the far side — the alternative (all atoms first) enumerates
             the unconstrained side as a cross product. *)
          let select cgens =
            let best = ref (-1) and best_n = ref max_int in
            List.iter
              (fun j ->
                if assigned.(j) < 0 && lits.(j).alive_n < !best_n then begin
                  best := j;
                  best_n := lits.(j).alive_n
                end)
              cgens;
            !best
          in
          (* --- dynamic component decomposition ---
             Re-split the remaining work by shared *unbound* variables
             after every assignment, exactly like the reference engine:
             once the atoms ground the join variables, the similarity
             and repair web falls apart into small independent
             fragments, and a failure in one fragment can never be
             repaired by backtracking into another. Items are the
             unassigned generative literals, the still-pending checks,
             and the environment-deferred similarities awaiting
             resolution of an unbound side. *)
          let var_item = Array.make (max nvars 1) (-1) in
          let var_stamp = Array.make (max nvars 1) 0 in
          let stamp = ref 0 in
          let sp_cap = max (2 * ng + nchk) 1 in
          let sp_item = Array.make sp_cap 0 in
          let sp_parent = Array.make sp_cap 0 in
          (* Items are coded into one int space — gen j as [j], check ci
             as [ng + ci], deferred sim j as [ng + nchk + j] — and the
             union-find runs over preallocated scratch. Decided checks
             and fully-resolved deferrals carry no unbound variable and
             are dropped here; [finish] re-derives their verdicts.
             Returns [None] when everything still hangs together as one
             component, so the caller reuses its lists unchanged. *)
          let split cgens cchecks cdefers =
            let n = ref 0 in
            let add code =
              sp_item.(!n) <- code;
              incr n
            in
            List.iter add cgens;
            List.iter
              (fun ci -> if chk_state.(ci) = 0 then add (ng + ci))
              cchecks;
            List.iter
              (fun j ->
                if Array.exists (fun v -> binding.(v) < 0) lits.(j).lvars
                then add (ng + nchk + j))
              cdefers;
            let n = !n in
            for i = 0 to n - 1 do
              sp_parent.(i) <- i
            done;
            let rec find i =
              if sp_parent.(i) = i then i
              else begin
                let r = find sp_parent.(i) in
                sp_parent.(i) <- r;
                r
              end
            in
            let union a b =
              let ra = find a and rb = find b in
              if ra <> rb then sp_parent.(ra) <- rb
            in
            let item_vars code =
              if code < ng then lits.(code).lvars
              else if code < ng + nchk then chk_vars.(code - ng)
              else lits.(code - ng - nchk).lvars
            in
            incr stamp;
            for i = 0 to n - 1 do
              Array.iter
                (fun v ->
                  if binding.(v) < 0 then
                    if var_stamp.(v) <> !stamp then begin
                      var_stamp.(v) <- !stamp;
                      var_item.(v) <- i
                    end
                    else union i var_item.(v))
                (item_vars sp_item.(i))
            done;
            let single = ref true in
            (if n > 1 then begin
               let r0 = find 0 in
               let i = ref 1 in
               while !single && !i < n do
                 if find !i <> r0 then single := false;
                 incr i
               done
             end);
            if !single then None
            else begin
              let tbl = Hashtbl.create 8 in
              for i = n - 1 downto 0 do
                let r = find i in
                let g, ch, df =
                  Option.value ~default:([], [], []) (Hashtbl.find_opt tbl r)
                in
                let code = sp_item.(i) in
                Hashtbl.replace tbl r
                  (if code < ng then (code :: g, ch, df)
                   else if code < ng + nchk then (g, (code - ng) :: ch, df)
                   else (g, ch, (code - ng - nchk) :: df))
              done;
              Some
                (Hashtbl.fold (fun _ c acc -> c :: acc) tbl []
                |> List.sort (fun (g1, c1, d1) (g2, c2, d2) ->
                       let len (g, c, d) =
                         List.length g + List.length c + List.length d
                       in
                       let first (g, c, d) =
                         match (g, c, d) with
                         | j :: _, _, _ | _, _, j :: _ -> j
                         | [], ci :: _, [] -> ng + ci
                         | [], [], [] -> 0
                       in
                       match
                         Int.compare (len (g1, c1, d1)) (len (g2, c2, d2))
                       with
                       | 0 ->
                           Int.compare
                             (first (g1, c1, d1))
                             (first (g2, c2, d2))
                       | c -> c))
            end
          in
          let finish cchecks cdefers =
            (* Nothing left that can bind a variable: any environment
               branch still deferred is unsatisfiable — sides left
               unresolved here can only be bound by resolve_checks'
               fresh constants, which never satisfy a similarity —
               matching the engines' shared semantics. *)
            List.for_all (fun j -> eval_deferred j = `Sat) cdefers
            &&
            let pending =
              List.filter_map
                (fun ci ->
                  if chk_state.(ci) = 0 then Some chk_arr.(ci) else None)
                cchecks
            in
            pending = [] || resolve_checks target (current_subst ()) pending
          in
          let rec solve cgens cchecks cdefers =
            if cgens = [] then finish cchecks cdefers
            else
              match split cgens cchecks cdefers with
              | None -> branch (cgens, cchecks, cdefers)
              | Some comps' -> List.for_all branch comps'
          and branch (cgens, cchecks, cdefers) =
            match cgens with
            | [] -> finish cchecks cdefers
            | _ ->
                let j = select cgens in
                let rest = List.filter (fun i -> i <> j) cgens in
                let cl = lits.(j) in
                let attempt k =
                  incr nodes;
                  spend 1;
                  let mark = !tr_len in
                  (* the assignment itself is trailed: sibling
                     components solved between this node and a later
                     failure leave their literals assigned, and the
                     undo must roll those back too *)
                  assigned.(j) <- k;
                  push 3 j 0;
                  let bsnap = !nbinds in
                  let ok =
                    try
                      apply_cand j cl.cands.(k);
                      true
                    with Dead -> false
                  in
                  let cdefers' =
                    if
                      cl.cands.(k).d_id < 0
                      && eval_deferred j = `Unknown
                    then j :: cdefers
                    else cdefers
                  in
                  let ok =
                    ok
                    &&
                    (* a candidate that bound nothing cannot have
                       changed the component structure (a deferral
                       keeps this literal's linkage alive), so skip
                       the re-split *)
                    if !nbinds = bsnap then branch (rest, cchecks, cdefers')
                    else solve rest cchecks cdefers'
                  in
                  if ok then true
                  else begin
                    undo_to mark;
                    false
                  end
                in
                let rec try_from k skip =
                  if k >= Array.length cl.cands then false
                  else if k = skip || not cl.alive.(k) then
                    try_from (k + 1) skip
                  else if attempt k then true
                  else try_from (k + 1) skip
                in
                (* Dynamic candidate order for the deferred environment
                   branch: the reference engine computes candidates at
                   selection time, where a similarity whose sides are
                   already bound takes the environment branch first (or
                   rules it out). Mirror that here — the static table
                   was built before any binding existed. *)
                if cl.env_k < 0 || not cl.alive.(cl.env_k) then
                  try_from 0 (-1)
                else begin
                  match eval_deferred j with
                  | `Sat -> attempt cl.env_k || try_from 0 cl.env_k
                  | `Unsat -> try_from 0 cl.env_k
                  | `Unknown -> try_from 0 (-1)
                end
          in
          let solved =
            List.for_all
              (fun (cgens, cchecks) -> solve cgens cchecks [])
              comps
          in
          if not solved then record Not_subsumed
          else begin
            let image = ref IntSet.empty in
            Array.iteri
              (fun j k ->
                if k >= 0 then begin
                  let id = lits.(j).cands.(k).d_id in
                  if id >= 0 then image := IntSet.add id !image
                end)
              assigned;
            if
              repair_connectivity
              && not (check_repair_connectivity target !image)
            then
              (* The first witness's image is rejected; completeness
                 needs a search that backtracks *through* the
                 connectivity condition. Delegated to the SAT engine:
                 its connectivity clauses decide these instances orders
                 of magnitude faster than an exhaustive re-search (the
                 per-target solver is shared, so encodings and learned
                 clauses amortize across an ARMG chain that keeps
                 landing here), while [`Backtrack] keeps the
                 self-contained [search_exhaustive] re-search so the
                 reference engine stays independent of the solver. *)
              record
                (subsumes_target_sat ~budget:(max 1 !budget)
                   ~repair_connectivity:true c target)
            else record (Subsumed (current_subst ()))
          end
        end
      end
    with Exhausted ->
      if !setup_end = t0 then setup_end := Unix.gettimeofday ();
      record Budget_exhausted
  end

(* ------------------------------------------------------------------ *)
(* Backtracking engine: dynamic component decomposition over persistent
   substitutions. Kept as the rollout fallback and the bench baseline.   *)

(* Split literals into connected components of the graph whose edges are
   shared unbound variables. Components are independent subproblems: a
   failed assignment in one can never be fixed by backtracking into
   another, which is what makes matching 100-literal bottom clauses
   tractable. *)
let components theta literals =
  let unbound l =
    List.filter (fun v -> not (Substitution.mem theta v)) (Literal.vars l)
  in
  let items = List.map (fun l -> (l, unbound l)) literals in
  let by_var : (string, int list ref) Hashtbl.t = Hashtbl.create 32 in
  List.iteri
    (fun i (_, vars) ->
      List.iter
        (fun v ->
          match Hashtbl.find_opt by_var v with
          | Some ids -> ids := i :: !ids
          | None -> Hashtbl.add by_var v (ref [ i ]))
        vars)
    items;
  let n = List.length items in
  let arr = Array.of_list items in
  let comp = Array.make n (-1) in
  let rec mark i c =
    if comp.(i) = -1 then begin
      comp.(i) <- c;
      List.iter
        (fun v ->
          match Hashtbl.find_opt by_var v with
          | Some ids -> List.iter (fun j -> mark j c) !ids
          | None -> ())
        (snd arr.(i))
    end
  in
  let next = ref 0 in
  for i = 0 to n - 1 do
    if comp.(i) = -1 then begin
      mark i !next;
      incr next
    end
  done;
  List.init !next (fun c ->
      List.filteri (fun i _ -> comp.(i) = c) (List.map fst items))

(* Remove exactly one occurrence of [x] (by physical equality): a body may
   contain the same literal object twice, and dropping every shared
   occurrence would silently skip the duplicates' expansions. *)
let remove_one_phys x l =
  let rec go = function
    | [] -> []
    | y :: rest -> if y == x then rest else y :: go rest
  in
  go l

let subsumes_target_backtrack ?(budget = 200_000) ?(repair_connectivity = true)
    (c : Clause.t) (target : target) =
  let budget = ref budget in
  let head_theta =
    match c.head, target.d_literals.(0) with
    | Literal.Rel { pred = p1; args = a1 }, Literal.Rel { pred = p2; args = a2 }
      when String.equal p1 p2 ->
        unify_args target.env Substitution.empty a1 a2
    | _ -> None
  in
  match head_theta with
  | None -> Not_subsumed
  | Some theta0 -> (
      let eval_check theta l =
        match l with
        | Literal.Eq (x, y) -> (
            match
              ( Substitution.apply_term theta x,
                Substitution.apply_term theta y )
            with
            | (Term.Var _, _ | _, Term.Var _) -> `Unknown
            | tx, ty ->
                if Clause_env.eq target.env tx ty then `Sat else `Unsat)
        | Literal.Neq (x, y) -> (
            match
              ( Substitution.apply_term theta x,
                Substitution.apply_term theta y )
            with
            | (Term.Var _, _ | _, Term.Var _) -> `Unknown
            | tx, ty ->
                if Clause_env.neq target.env tx ty then `Sat else `Unsat)
        | _ -> `Unknown
      in
      (* Solve one component: pick the generative literal with the fewest
         unbound variables, branch over its candidate extensions, recurse
         (the recursion re-splits into components). Returns the extended
         substitution and image, or None. *)
      let unbound_count theta l =
        List.length
          (List.filter
             (fun v -> not (Substitution.mem theta v))
             (Literal.vars l))
      in
      let rec solve remaining theta image =
        (* Drop satisfied checks; fail on violated ones. *)
        let rec filter_checks acc = function
          | [] -> Some (List.rev acc)
          | l :: rest when is_check l -> (
              match eval_check theta l with
              | `Sat -> filter_checks acc rest
              | `Unsat -> None
              | `Unknown -> filter_checks (l :: acc) rest)
          | l :: rest -> filter_checks (l :: acc) rest
        in
        match filter_checks [] remaining with
        | None -> None
        | Some [] -> Some (theta, image)
        | Some remaining -> (
            match components theta remaining with
            | [] -> Some (theta, image)
            | [ component ] -> solve_component component theta image
            | comps ->
                (* Independent subproblems: thread θ and image through. *)
                let rec fold theta image = function
                  | [] -> Some (theta, image)
                  | comp :: rest -> (
                      match solve comp theta image with
                      | None -> None
                      | Some (theta', image') -> fold theta' image' rest)
                in
                fold theta image
                  (List.stable_sort
                     (fun a b ->
                       Int.compare (List.length a) (List.length b))
                     comps))
      and solve_component component theta image =
        let gens = List.filter (fun l -> not (is_check l)) component in
        match gens with
        | [] ->
            (* Only restriction literals with unbound variables remain:
               resolve them with the union-find / fresh-constant scheme. *)
            if resolve_checks target theta component then Some (theta, image)
            else None
        | _ ->
            (* Schema and repair atoms generate bindings; similarity
               literals are satisfiable through the environment's closure
               once their sides are bound, so they are only selected when
               no atom remains -- picking one early with an unbound side
               dead-ends whenever D has no explicit similarity literal. *)
            let pool =
              match
                List.filter
                  (function
                    | Literal.Rel _ | Literal.Repair _ -> true
                    | _ -> false)
                  gens
              with
              | [] -> gens
              | atoms -> atoms
            in
            let next, _ =
              List.fold_left
                (fun (best, best_score) l ->
                  let score = unbound_count theta l in
                  if score < best_score then (l, score) else (best, best_score))
                (List.hd pool, unbound_count theta (List.hd pool))
                (List.tl pool)
            in
            let rest = remove_one_phys next component in
            let rec try_candidates = function
              | [] -> None
              | (theta', id_opt) :: more -> (
                  let image' =
                    match id_opt with
                    | Some id -> IntSet.add id image
                    | None -> image
                  in
                  match solve rest theta' image' with
                  | Some _ as ok -> ok
                  | None -> try_candidates more)
            in
            try_candidates (candidates target budget theta next)
      in
      try
        match solve c.body theta0 IntSet.empty with
        | Some (theta, image) ->
            if
              repair_connectivity
              && not (check_repair_connectivity target image)
            then (
              (* first witness rejected — see [search_exhaustive] *)
              match
                search_exhaustive target budget ~repair_connectivity:true c
                  theta0
              with
              | Some theta -> Subsumed theta
              | None -> Not_subsumed)
            else Subsumed theta
        | None -> Not_subsumed
      with Exhausted -> Budget_exhausted)

let subsumes_target ?engine ?budget ?repair_connectivity (c : Clause.t)
    (target : target) =
  let engine =
    match engine with Some e -> e | None -> default_engine ()
  in
  match engine with
  | `Csp -> subsumes_target_csp ?budget ?repair_connectivity c target
  | `Backtrack -> subsumes_target_backtrack ?budget ?repair_connectivity c target
  | `Sat -> subsumes_target_sat ?budget ?repair_connectivity c target

let subsumes ?engine ?budget ?repair_connectivity c d =
  subsumes_target ?engine ?budget ?repair_connectivity c (prepare d)

(* Reference engine: chronological backtracking in body order. *)
let subsumes_naive ?(budget = 200_000) ?(repair_connectivity = true)
    (c : Clause.t) (d : Clause.t) =
  let target = prepare d in
  let budget = ref budget in
  let head_theta =
    match c.head, target.d_literals.(0) with
    | Literal.Rel { pred = p1; args = a1 }, Literal.Rel { pred = p2; args = a2 }
      when String.equal p1 p2 ->
        unify_args target.env Substitution.empty a1 a2
    | _ -> None
  in
  match head_theta with
  | None -> Not_subsumed
  | Some theta0 -> (
      try
        match search_exhaustive target budget ~repair_connectivity c theta0 with
        | Some theta -> Subsumed theta
        | None -> Not_subsumed
      with Exhausted -> Budget_exhausted)

let report_exhausted c =
  Log.warn (fun m ->
      m "subsumption budget exhausted for %s-clause" (Clause.head_pred c))

let subsumes_target_bool ?engine ?budget ?repair_connectivity c t =
  match subsumes_target ?engine ?budget ?repair_connectivity c t with
  | Subsumed _ -> true
  | Not_subsumed -> false
  | Budget_exhausted ->
      report_exhausted c;
      false

let subsumes_bool ?engine ?budget ?repair_connectivity c d =
  match subsumes ?engine ?budget ?repair_connectivity c d with
  | Subsumed _ -> true
  | Not_subsumed -> false
  | Budget_exhausted ->
      report_exhausted c;
      false

let equivalent ?engine ?budget c d =
  subsumes_bool ?engine ?budget c d && subsumes_bool ?engine ?budget d c

module Armg = struct
  let head_unify target head =
    match head, target.d_literals.(0) with
    | Literal.Rel { pred = p1; args = a1 }, Literal.Rel { pred = p2; args = a2 }
      when String.equal p1 p2 ->
        unify_args target.env Substitution.empty a1 a2
    | _ -> None

  let extend target theta = function
    | (Literal.Rel _ | Literal.Repair _ | Literal.Sim _) as l ->
        let budget = ref max_int in
        List.map fst (candidates target budget theta l)
    | Literal.Eq _ | Literal.Neq _ ->
        invalid_arg "Subsumption.Armg.extend: restriction literal"

  let check target theta = function
    | Literal.Eq (x, y) -> (
        match
          (Substitution.apply_term theta x, Substitution.apply_term theta y)
        with
        | (Term.Var _, _ | _, Term.Var _) -> `Unknown
        | tx, ty -> if Clause_env.eq target.env tx ty then `Sat else `Unsat)
    | Literal.Neq (x, y) -> (
        match
          (Substitution.apply_term theta x, Substitution.apply_term theta y)
        with
        | (Term.Var _, _ | _, Term.Var _) -> `Unknown
        | tx, ty -> if Clause_env.neq target.env tx ty then `Sat else `Unsat)
    | Literal.Rel _ | Literal.Sim _ | Literal.Repair _ ->
        invalid_arg "Subsumption.Armg.check: generative literal"
end
