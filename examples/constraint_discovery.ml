(* Constraint discovery: the paper assumes MDs and CFDs "may be provided
   by users or discovered from the data using profiling techniques"
   (§2.2). This example profiles the raw two-source movie database,
   discovers the matching dependency and the key FDs, and learns with the
   discovered constraints — no hand-written domain knowledge.

   Run with: dune exec examples/constraint_discovery.exe *)

open Dlearn_relation
open Dlearn_core
open Dlearn_eval
open Dlearn_profiling

let () =
  let w = Imdb_omdb.generate ~n:60 `One_md in
  let db = w.Workload.db in
  print_endline "Profiling imdb_movies x omdb_movies for matching attributes:";
  let proposals = Md_discovery.discover ~threshold:0.7 db "imdb_movies" "omdb_movies" in
  List.iter
    (fun (md, stats) ->
      Printf.printf "  %s  (coverage %.2f, ambiguity %.2f)\n"
        (Dlearn_constraints.Md.to_string md)
        stats.Md_discovery.coverage stats.Md_discovery.ambiguity)
    proposals;
  let mds =
    List.filter
      (fun (md : Dlearn_constraints.Md.t) ->
        md.Dlearn_constraints.Md.compared = [ ("title", "title") ])
      (List.map fst proposals)
  in

  print_endline "\nProfiling omdb_rating for functional dependencies:";
  let fds = Fd_discovery.discover ~max_lhs:1 (Database.find db "omdb_rating") in
  List.iter
    (fun f ->
      Printf.printf "  %s -> %s\n"
        (String.concat ", " f.Fd_discovery.lhs)
        f.Fd_discovery.rhs)
    fds;
  let cfds =
    List.filteri
      (fun i _ -> i < 2)
      (List.map (Fd_discovery.to_cfd ~id:"discovered" "omdb_rating") fds)
  in

  print_endline "\nLearning with the discovered constraints:";
  let config = { w.Workload.config with Config.km = 2 } in
  let ctx = Context.create config db mds cfds in
  let result = Learner.learn ctx ~pos:w.Workload.pos ~neg:w.Workload.neg in
  print_endline (Dlearn_logic.Definition.to_string result.Learner.definition);
  let weighted =
    Weighting.weigh ctx result.Learner.definition ~pos:w.Workload.pos
      ~neg:w.Workload.neg
  in
  Printf.printf "\nweighted clauses:\n%s"
    (Format.asprintf "%a" Weighting.pp weighted)
