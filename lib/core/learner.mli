(** The DLearn covering-loop learner (Algorithm 1, §4).

    One clause at a time: build the bottom clause of an uncovered positive
    seed, hill-climb by generalising it against sampled positives (ARMG),
    score candidates by covered positives minus covered negatives, accept
    the clause when it covers enough positives with enough precision, and
    repeat on the still-uncovered positives. Seeds whose best clause fails
    the acceptance criterion are skipped, which guarantees termination. *)

type clause_stats = {
  clause : Dlearn_logic.Clause.t;
  pos_covered : int;  (** over the full positive training set *)
  neg_covered : int;
}

type result = {
  definition : Dlearn_logic.Definition.t;
  stats : clause_stats list;
  seconds : float;  (** wall-clock learning time *)
  seeds_skipped : int;
}

(** [preflight ctx] statically analyses the context's constraint set
    ({!Dlearn_analysis.Analyzer.check_constraints}) and raises
    {!Dlearn_analysis.Analyzer.Rejected} with the diagnostics when it
    contains errors — unless [Config.allow_dirty_constraints] is set, in
    which case it does nothing. [learn] runs it before building the first
    bottom clause. *)
val preflight : Context.t -> unit

(** [learn ctx ~pos ~neg] learns a definition of the context's target.
    @raise Dlearn_analysis.Analyzer.Rejected when the constraint preflight
    finds errors (see {!preflight}). *)
val learn :
  Context.t ->
  pos:Dlearn_relation.Tuple.t list ->
  neg:Dlearn_relation.Tuple.t list ->
  result

(** [predictor ctx definition] prepares the definition's clauses once and
    returns the prediction function: does some clause cover the example
    under the positive-coverage semantics? *)
val predictor :
  Context.t ->
  Dlearn_logic.Definition.t ->
  Dlearn_relation.Tuple.t ->
  bool

(** [predict ctx definition e] is a one-shot [predictor] application. *)
val predict :
  Context.t ->
  Dlearn_logic.Definition.t ->
  Dlearn_relation.Tuple.t ->
  bool
