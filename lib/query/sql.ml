open Dlearn_relation
open Dlearn_logic

let quote_value = function
  | Value.String s ->
      Printf.sprintf "'%s'" (String.concat "''" (String.split_on_char '\'' s))
  | v -> Value.to_string v

let of_clause (clause : Clause.t) =
  if Clause.repair_body clause <> [] then
    invalid_arg "Sql.of_clause: repair literals have no SQL rendering";
  (* One alias per schema atom; the first column reference of each
     variable is canonical, later ones become join equalities. *)
  let aliases = ref [] in
  let var_columns : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let conditions = ref [] in
  let add_condition c = conditions := c :: !conditions in
  List.iteri
    (fun i l ->
      match l with
      | Literal.Rel { pred; args } ->
          let alias = Printf.sprintf "t%d" i in
          aliases := Printf.sprintf "%s AS %s" pred alias :: !aliases;
          Array.iteri
            (fun pos term ->
              let column = Printf.sprintf "%s.c%d" alias pos in
              match term with
              | Term.Const v ->
                  add_condition
                    (Printf.sprintf "%s = %s" column (quote_value v))
              | Term.Var x -> (
                  match Hashtbl.find_opt var_columns x with
                  | Some canonical ->
                      add_condition (Printf.sprintf "%s = %s" canonical column)
                  | None -> Hashtbl.add var_columns x column))
            args
      | _ -> ())
    clause.Clause.body;
  let column_of term =
    match term with
    | Term.Const v -> quote_value v
    | Term.Var x -> (
        match Hashtbl.find_opt var_columns x with
        | Some c -> c
        | None ->
            invalid_arg
              (Printf.sprintf "Sql.of_clause: variable %s bound by no atom" x))
  in
  List.iter
    (fun l ->
      match l with
      | Literal.Sim (a, b) ->
          add_condition
            (Printf.sprintf "SIMILAR(%s, %s)" (column_of a) (column_of b))
      | Literal.Eq (a, b) ->
          add_condition (Printf.sprintf "%s = %s" (column_of a) (column_of b))
      | Literal.Neq (a, b) ->
          add_condition (Printf.sprintf "%s <> %s" (column_of a) (column_of b))
      | Literal.Rel _ | Literal.Repair _ -> ())
    clause.Clause.body;
  let select =
    match clause.Clause.head with
    | Literal.Rel { args; _ } ->
        Array.to_list args |> List.map column_of |> String.concat ", "
    | _ -> assert false
  in
  let where =
    match List.rev !conditions with
    | [] -> ""
    | cs -> "\nWHERE " ^ String.concat "\n  AND " cs
  in
  Printf.sprintf "SELECT DISTINCT %s\nFROM %s%s" select
    (String.concat ", " (List.rev !aliases))
    where
