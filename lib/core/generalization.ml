open Dlearn_logic

(* Deduplicate substitutions on their binding lists: polymorphic hash plus
   structural equality, no string rendering. *)
module Theta_key = Hashtbl.Make (struct
  type t = (string * Term.t) list

  let equal a b =
    List.length a = List.length b
    && List.for_all2
         (fun (v1, t1) (v2, t2) -> String.equal v1 v2 && Term.equal t1 t2)
         a b

  let hash = Hashtbl.hash
end)

let dedup_thetas thetas =
  let seen = Theta_key.create 16 in
  List.filter
    (fun th ->
      let key = Substitution.to_list th in
      if Theta_key.mem seen key then false
      else begin
        Theta_key.add seen key ();
        true
      end)
    thetas

let take n l =
  let rec go i = function
    | [] -> []
    | _ when i >= n -> []
    | x :: rest -> x :: go (i + 1) rest
  in
  go 0 l

(* Repair literals whose subject no longer occurs in the head or any schema
   atom repair nothing; drop them, then restore head-connectedness and
   remove dangling restrictions, iterating to a fixpoint. *)
let cleanup (c : Clause.t) =
  let rec fix c =
    let anchored_terms =
      List.concat_map Literal.terms
        (c.Clause.head :: Clause.rel_body c)
    in
    let body =
      List.filter
        (fun l ->
          match l with
          | Literal.Repair { subject; _ } ->
              List.exists (Term.equal subject) anchored_terms
          | _ -> true)
        c.Clause.body
    in
    let c' =
      Clause.remove_dangling_restrictions
        (Clause.head_connected { c with body })
    in
    if Clause.equal c c' then c else fix c'
  in
  fix c

let armg (ctx : Context.t) (c : Clause.t) e' =
  let ckey = Clause.to_string (Clause.canonical c) in
  Context.armg_cached ctx e' ckey @@ fun () ->
  let entry = Bottom_clause.ground ctx e' in
  let target = Coverage.ground_target ctx entry in
  match Subsumption.Armg.head_unify target c.Clause.head with
  | None -> None
  | Some theta0 ->
      let beam = ctx.Context.config.Config.armg_beam in
      let thetas = ref [ theta0 ] in
      let kept =
        List.filter
          (fun l ->
            match l with
            | Literal.Rel _ | Literal.Repair _ | Literal.Sim _ ->
                let extensions =
                  List.concat_map
                    (fun th -> Subsumption.Armg.extend target th l)
                    !thetas
                  |> dedup_thetas
                  |> take beam
                in
                if extensions = [] then false (* blocking literal *)
                else begin
                  thetas := extensions;
                  true
                end
            | Literal.Eq _ | Literal.Neq _ ->
                let verdicts =
                  List.map
                    (fun th -> (th, Subsumption.Armg.check target th l))
                    !thetas
                in
                let surviving =
                  List.filter_map
                    (fun (th, v) -> if v = `Unsat then None else Some th)
                    verdicts
                in
                if surviving = [] then false
                else begin
                  thetas := surviving;
                  true
                end)
          c.Clause.body
      in
      Some (cleanup { c with Clause.body = kept })
