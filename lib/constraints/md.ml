open Dlearn_relation

type t = {
  id : string;
  left_rel : string;
  right_rel : string;
  compared : (string * string) list;
  unified : string * string;
  threshold_override : float option;
}

type sim_spec = {
  measure : Dlearn_similarity.Combined.measure;
  threshold : float;
}

let default_sim = { measure = Dlearn_similarity.Combined.Paper; threshold = 0.6 }

let make ~id ~left ~right ~compared ~unified ?threshold () =
  if compared = [] then invalid_arg "Md.make: no compared attributes";
  {
    id;
    left_rel = left;
    right_rel = right;
    compared;
    unified;
    threshold_override = threshold;
  }

let symmetric ?threshold ~id rel1 rel2 attr =
  make ~id ~left:rel1 ~right:rel2 ~compared:[ (attr, attr) ]
    ~unified:(attr, attr) ?threshold ()

let effective_spec t spec =
  match t.threshold_override with
  | Some threshold -> { spec with threshold }
  | None -> spec

let mentions t rel = String.equal t.left_rel rel || String.equal t.right_rel rel

let to_string t =
  let compared =
    String.concat ", "
      (List.map
         (fun (a, b) -> Printf.sprintf "%s[%s] ~ %s[%s]" t.left_rel a t.right_rel b)
         t.compared)
  in
  let c, d = t.unified in
  Printf.sprintf "%s: %s -> %s[%s] <=> %s[%s]" t.id compared t.left_rel c
    t.right_rel d

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Merge = struct
  let prefix = "\xe2\x9f\xa8" (* U+27E8 mathematical left angle bracket *)
  let suffix = "\xe2\x9f\xa9"
  let sep = "|"

  let is_merged = function
    | Value.String s ->
        String.length s >= String.length prefix
        && String.sub s 0 (String.length prefix) = prefix
    | Value.Null | Value.Int _ | Value.Float _ -> false

  let components v =
    match v with
    | Value.String s when is_merged v ->
        let inner =
          String.sub s (String.length prefix)
            (String.length s - String.length prefix - String.length suffix)
        in
        String.split_on_char '|' inner
    | _ -> [ Value.to_string v ]

  let merge a b =
    let parts =
      List.sort_uniq String.compare (components a @ components b)
    in
    Value.String (prefix ^ String.concat sep parts ^ suffix)
end

let similar spec a b =
  if Value.is_null a || Value.is_null b then false
  else if Value.equal a b then true
  else if Merge.is_merged a || Merge.is_merged b then false
  else
    Dlearn_similarity.Combined.similarity ~measure:spec.measure
      (Value.as_string a) (Value.as_string b)
    >= spec.threshold
