open Dlearn_relation
open Dlearn_profiling

let sv s = Value.String s

let locale_relation () =
  let r =
    Relation.create
      (Schema.string_attrs "locale" [ "title"; "language"; "country" ])
  in
  Relation.insert_all r
    [
      Tuple.of_strings [ "Bait"; "English"; "USA" ];
      Tuple.of_strings [ "Bait"; "English"; "USA" ];
      Tuple.of_strings [ "Roma"; "Spanish"; "Mexico" ];
      Tuple.of_strings [ "Lore"; "German"; "Germany" ];
      Tuple.of_strings [ "Nola"; "English"; "USA" ];
    ];
  r

let fd_tests =
  [
    Alcotest.test_case "holds on a key" `Quick (fun () ->
        let r = locale_relation () in
        Alcotest.(check bool) "title -> country" true
          (Fd_discovery.holds r [ "title" ] "country");
        Alcotest.(check bool) "language -> country" true
          (Fd_discovery.holds r [ "language" ] "country"));
    Alcotest.test_case "detects a violated FD" `Quick (fun () ->
        let r = locale_relation () in
        ignore (Relation.insert r (Tuple.of_strings [ "Bait"; "English"; "Ireland" ]));
        Alcotest.(check bool) "title -> country now fails" false
          (Fd_discovery.holds r [ "title" ] "country"));
    Alcotest.test_case "discover finds minimal FDs only" `Quick (fun () ->
        let r = locale_relation () in
        let fds = Fd_discovery.discover ~max_lhs:2 r in
        Alcotest.(check bool) "title -> language found" true
          (List.exists
             (fun f ->
               f.Fd_discovery.lhs = [ "title" ] && f.Fd_discovery.rhs = "language")
             fds);
        (* (title, language) -> country must be subsumed by title -> country. *)
        Alcotest.(check bool) "no non-minimal lhs over title" false
          (List.exists
             (fun f ->
               List.mem "title" f.Fd_discovery.lhs
               && List.length f.Fd_discovery.lhs = 2
               && f.Fd_discovery.rhs = "country")
             fds));
    Alcotest.test_case "discovered FDs hold" `Quick (fun () ->
        let r = locale_relation () in
        List.iter
          (fun f ->
            Alcotest.(check bool) "holds" true
              (Fd_discovery.holds r f.Fd_discovery.lhs f.Fd_discovery.rhs))
          (Fd_discovery.discover r));
    Alcotest.test_case "to_cfd round-trips through violation checking" `Quick
      (fun () ->
        let r = locale_relation () in
        let fds = Fd_discovery.discover ~max_lhs:1 r in
        List.iter
          (fun f ->
            let cfd = Fd_discovery.to_cfd ~id:"t" "locale" f in
            Alcotest.(check (list (pair int int))) "no violations" []
              (Dlearn_constraints.Violation.find cfd r))
          fds);
  ]

let cfd_tests =
  [
    Alcotest.test_case "globally-holding FD yields the pattern-free CFD" `Quick
      (fun () ->
        let r = locale_relation () in
        let cfds =
          Cfd_discovery.discover r
            {
              Cfd_discovery.lhs = [ "title" ];
              rhs = "country";
              condition_attr = "title";
            }
        in
        Alcotest.(check int) "one CFD" 1 (List.length cfds));
    Alcotest.test_case "mines the conditioning constant" `Quick (fun () ->
        (* language -> country fails globally (English maps to USA and
           Ireland) but holds for Spanish rows... too few; for English with
           enough support it fails; use a relation where one constant
           works. *)
        let r =
          Relation.create (Schema.string_attrs "r" [ "lang"; "country" ])
        in
        Relation.insert_all r
          [
            Tuple.of_strings [ "English"; "USA" ];
            Tuple.of_strings [ "English"; "USA" ];
            Tuple.of_strings [ "English"; "USA" ];
            Tuple.of_strings [ "French"; "France" ];
            Tuple.of_strings [ "French"; "Canada" ];
            Tuple.of_strings [ "French"; "France" ];
          ];
        let cfds =
          Cfd_discovery.discover ~min_support:3 r
            { Cfd_discovery.lhs = [ "lang" ]; rhs = "country"; condition_attr = "lang" }
        in
        Alcotest.(check int) "one conditional CFD" 1 (List.length cfds);
        match cfds with
        | [ cfd ] -> (
            match cfd.Dlearn_constraints.Cfd.lhs with
            | [ ("lang", Dlearn_constraints.Cfd.Const c) ]
              when Value.equal c (sv "English") ->
                ()
            | _ -> Alcotest.fail "expected English pattern")
        | _ -> assert false);
    Alcotest.test_case "condition attribute must be in lhs" `Quick (fun () ->
        let r = locale_relation () in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Cfd_discovery.discover r
                  {
                    Cfd_discovery.lhs = [ "title" ];
                    rhs = "country";
                    condition_attr = "language";
                  });
             false
           with Invalid_argument _ -> true));
  ]

let md_tests =
  [
    Alcotest.test_case "stats on matching columns" `Quick (fun () ->
        let left = Relation.create (Schema.string_attrs "l" [ "title" ]) in
        Relation.insert_all left
          [
            Tuple.of_strings [ "Superbad (2007)" ];
            Tuple.of_strings [ "Zoolander (2001)" ];
          ];
        let right = Relation.create (Schema.string_attrs "r" [ "title" ]) in
        Relation.insert_all right
          [
            Tuple.of_strings [ "Superbad [2007]" ];
            Tuple.of_strings [ "Zoolander [2001]" ];
          ];
        let stats = Md_discovery.attribute_stats ~threshold:0.7 left 0 right 0 in
        Alcotest.(check int) "both matched" 2 stats.Md_discovery.matched;
        Alcotest.(check int) "none ambiguous" 0 stats.Md_discovery.ambiguous);
    Alcotest.test_case "discover proposes the title MD" `Quick (fun () ->
        let w = Dlearn_eval.Imdb_omdb.generate ~n:40 `One_md in
        let proposals =
          Md_discovery.discover w.Dlearn_eval.Workload.db "imdb_movies"
            "omdb_movies"
        in
        Alcotest.(check bool) "title~title proposed" true
          (List.exists
             (fun ((md : Dlearn_constraints.Md.t), _) ->
               md.Dlearn_constraints.Md.compared = [ ("title", "title") ])
             proposals);
        (* Identifier columns do not match across sources. *)
        Alcotest.(check bool) "id~oid not proposed" false
          (List.exists
             (fun ((md : Dlearn_constraints.Md.t), _) ->
               md.Dlearn_constraints.Md.compared = [ ("id", "oid") ])
             proposals));
    Alcotest.test_case "ambiguity counts multi-matches" `Quick (fun () ->
        let left = Relation.create (Schema.string_attrs "l" [ "t" ]) in
        Relation.insert_all left [ Tuple.of_strings [ "Star Wars Episode" ] ];
        let right = Relation.create (Schema.string_attrs "r" [ "t" ]) in
        Relation.insert_all right
          [
            Tuple.of_strings [ "Star Wars Episode IV" ];
            Tuple.of_strings [ "Star Wars Episode III" ];
          ];
        let stats = Md_discovery.attribute_stats ~threshold:0.6 left 0 right 0 in
        Alcotest.(check int) "ambiguous" 1 stats.Md_discovery.ambiguous);
  ]


(* End-to-end: constraints discovered by profiling are good enough to
   drive the learner — the paper's "provided by users or discovered from
   the data" (§2.2). The full learn over the discovered constraints is
   repair-heavy exhaustive search (~25 s), so it only runs when
   DLEARN_LONG_TESTS=1 — CI keeps the long variant, the default local
   `dune runtest` stays fast. *)
let long_tests_enabled =
  match Sys.getenv_opt "DLEARN_LONG_TESTS" with
  | None -> false
  | Some s ->
      not
        (List.mem
           (String.lowercase_ascii (String.trim s))
           [ ""; "0"; "false"; "off"; "no" ])

let integration_tests =
  if not long_tests_enabled then []
  else
  [
    Alcotest.test_case "discovered constraints support learning" `Slow
      (fun () ->
        let w = Dlearn_eval.Imdb_omdb.generate ~n:40 `One_md in
        let db = w.Dlearn_eval.Workload.db in
        (* Discover the cross-source MD... *)
        let mds =
          Md_discovery.discover ~threshold:0.7 db "imdb_movies" "omdb_movies"
          |> List.map fst
          |> List.filter (fun (md : Dlearn_constraints.Md.t) ->
                 md.Dlearn_constraints.Md.compared = [ ("title", "title") ])
        in
        Alcotest.(check int) "title MD discovered" 1 (List.length mds);
        (* ... and the key FDs of the rating relation. *)
        let rating_fds =
          Fd_discovery.discover ~max_lhs:1
            (Dlearn_relation.Database.find db "omdb_rating")
        in
        Alcotest.(check bool) "oid -> rating found" true
          (List.exists
             (fun f ->
               f.Fd_discovery.lhs = [ "oid" ] && f.Fd_discovery.rhs = "rating")
             rating_fds);
        (* Learn with the discovered MD instead of the curated one. *)
        let open Dlearn_core in
        let ctx =
          Context.create w.Dlearn_eval.Workload.config db mds
            w.Dlearn_eval.Workload.cfds
        in
        let pos = w.Dlearn_eval.Workload.pos in
        let neg = w.Dlearn_eval.Workload.neg in
        let result = Learner.learn ctx ~pos ~neg in
        Alcotest.(check bool) "nonempty definition" false
          (Dlearn_logic.Definition.is_empty result.Learner.definition);
        let covered =
          List.filter (Learner.predictor ctx result.Learner.definition) pos
        in
        Alcotest.(check bool) "covers most positives" true
          (2 * List.length covered >= List.length pos));
  ]

let () =
  Alcotest.run "profiling"
    [
      ("fd_discovery", fd_tests);
      ("cfd_discovery", cfd_tests);
      ("md_discovery", md_tests);
      ("integration", integration_tests);
    ]
