open Dlearn_core

let src = Logs.Src.create "dlearn.experiment"

module Log = (val Logs.src_log src : Logs.LOG)

type run = {
  system : Baselines.system;
  workload_name : string;
  f1 : float;
  f1_std : float;
  precision : float;
  recall : float;
  seconds : float;
}

let evaluate ?(folds = 5) system (w : Workload.t) =
  (* Folds are independent (each builds its own context); they share the
     domain pool with the coverage engine — whichever level fans out
     first wins, the other runs sequentially inside it. *)
  let pool =
    Dlearn_parallel.Pool.get w.Workload.config.Config.num_domains
  in
  (* When tracing, record the whole evaluation and write the trace after
     the folds drain. Recording only appends to per-domain buffers; the
     learner's decisions never read them, so results are identical with
     tracing on and off. Back-to-back evaluates each overwrite [path] —
     the last run wins, matching the one-run CLI flow. *)
  let module Obs = Dlearn_obs.Obs in
  let finish_trace =
    match w.Workload.config.Config.trace with
    | None -> fun () -> ()
    | Some path ->
        let was_recording = Obs.recording () in
        if not was_recording then Obs.start_recording ();
        fun () ->
          Obs.write_trace path;
          if not was_recording then Obs.stop_recording ();
          Log.info (fun m -> m "wrote Chrome trace to %s" path);
          Log.info (fun m -> m "@[<v>%a@]" Fmt.lines (Obs.report ()))
  in
  let fold_results =
    Cross_validation.run ~pool ~k:folds ~seed:w.Workload.config.Config.seed
      ~pos:w.Workload.pos ~neg:w.Workload.neg (fun fold ->
        let ctx =
          Baselines.make_context system w.Workload.config w.Workload.db
            w.Workload.mds w.Workload.cfds
        in
        let result =
          Learner.learn ctx ~pos:fold.Cross_validation.train_pos
            ~neg:fold.Cross_validation.train_neg
        in
        let confusion =
          Metrics.of_predictions
            ~predict:(Learner.predictor ctx result.Learner.definition)
            ~pos:fold.Cross_validation.test_pos
            ~neg:fold.Cross_validation.test_neg
        in
        (confusion, result.Learner.seconds))
  in
  let f1s = List.map (fun (c, _) -> Metrics.f1 c) fold_results in
  let total =
    List.fold_left (fun acc (c, _) -> Metrics.add acc c) Metrics.empty
      fold_results
  in
  let seconds =
    Cross_validation.mean (List.map snd fold_results)
  in
  let r =
    {
      system;
      workload_name = w.Workload.name;
      f1 = Cross_validation.mean f1s;
      f1_std = Cross_validation.stddev f1s;
      precision = Metrics.precision total;
      recall = Metrics.recall total;
      seconds;
    }
  in
  finish_trace ();
  Log.app (fun m ->
      m "%s on %s: F1=%.2f (+/-%.2f) p=%.2f r=%.2f %.1fs/fold"
        (Baselines.name system) w.Workload.name r.f1 r.f1_std r.precision
        r.recall r.seconds);
  r

let with_config (w : Workload.t) f = { w with Workload.config = f w.Workload.config }
let with_km w km = with_config w (fun c -> { c with Config.km })
let with_depth w depth = with_config w (fun c -> { c with Config.depth })

let with_jobs w jobs =
  with_config w (fun c -> { c with Config.num_domains = max 1 jobs })

let with_incremental w incremental =
  with_config w (fun c -> { c with Config.incremental_coverage = incremental })

let with_subsumption w engine =
  with_config w (fun c -> { c with Config.subsumption_engine = engine })

let with_normalize w normalize =
  with_config w (fun c -> { c with Config.normalize_clauses = normalize })

let with_trace w trace = with_config w (fun c -> { c with Config.trace })

let with_sample_size w sample_size =
  with_config w (fun c -> { c with Config.sample_size })

type table = {
  title : string;
  header : string list;
  rows : string list list;
  plots : (string * string * (string * float) list) list;
      (* (title, unit, points): ASCII bars appended after the table *)
}

let table ?(plots = []) title header rows = { title; header; rows; plots }

let render t =
  Printf.sprintf "== %s ==\n%s%s" t.title
    (Dlearn_relation.Text_table.render ~header:t.header t.rows)
    (String.concat ""
       (List.map
          (fun (title, unit_label, points) ->
            "\n" ^ Ascii_plot.series ~title ~unit_label points)
          t.plots))

let f2 x = Printf.sprintf "%.2f" x
let secs x = Printf.sprintf "%.1fs" x

(* ------------------------------------------------------------------ *)

let md_workloads ?n () =
  [
    Imdb_omdb.generate ?n `One_md;
    Imdb_omdb.generate ?n `Three_mds;
    Walmart_amazon.generate ?n ();
    Dblp_scholar.generate ?n ();
  ]

let table4 ?folds ?n () =
  let rows =
    List.concat_map
      (fun w ->
        let base_systems =
          [ Baselines.Castor_nomd; Baselines.Castor_exact; Baselines.Castor_clean ]
        in
        let base_runs =
          List.map (fun s -> evaluate ?folds s w) base_systems
        in
        (* The paper sweeps km = 2/5/10; its km = 10 column is also its
           most expensive by far (285 minutes on IMDB+OMDB 3 MDs). At our
           budget we sweep km = 1/2/5, which exhibits the same trend. *)
        let dlearn_runs =
          List.map
            (fun km -> evaluate ?folds Baselines.Dlearn (with_km w km))
            [ 1; 2; 5 ]
        in
        let metric name f =
          (w.Workload.name ^ " " ^ name)
          :: List.map f (base_runs @ dlearn_runs)
        in
        [
          metric "F1" (fun r -> f2 r.f1);
          metric "Time" (fun r -> secs r.seconds);
        ])
      (md_workloads ?n ())
  in
  table "Table 4: learning over all datasets with MDs"
    [
      "Dataset / Metric"; "Castor-NoMD"; "Castor-Exact"; "Castor-Clean";
      "DLearn km=1"; "DLearn km=2"; "DLearn km=5";
    ]
    rows

(* The paper runs Table 5 at km = 10 (Walmart, DBLP) and km = 5 (IMDB);
   the CFD-vs-repair comparison is the signal, and km = 2 keeps the sweep
   tractable at our scale. *)
let cfd_workloads ?n () =
  [
    (Imdb_omdb.generate ?n `Three_mds, 2);
    (Walmart_amazon.generate ?n (), 2);
    (Dblp_scholar.generate ?n (), 2);
  ]

let table5 ?folds ?n () =
  let ps = [ 0.05; 0.10; 0.20 ] in
  let rows =
    List.concat_map
      (fun (w, km) ->
        let w = with_km w km in
        let runs system =
          List.map
            (fun p ->
              let w' =
                Workload.inject_violations w ~p
                  ~seed:w.Workload.config.Config.seed
              in
              evaluate ?folds system w')
            ps
        in
        let cfd_runs = runs Baselines.Dlearn_cfd in
        let rep_runs = runs Baselines.Dlearn_repaired in
        [
          (w.Workload.name ^ " F1")
          :: (List.map (fun r -> f2 r.f1) cfd_runs
             @ List.map (fun r -> f2 r.f1) rep_runs);
          (w.Workload.name ^ " Time")
          :: (List.map (fun r -> secs r.seconds) cfd_runs
             @ List.map (fun r -> secs r.seconds) rep_runs);
        ])
      (cfd_workloads ?n ())
  in
  table "Table 5: learning with MDs and CFD violations (rate p)"
    [
      "Dataset / Metric"; "CFD p=.05"; "CFD p=.10"; "CFD p=.20";
      "Rep p=.05"; "Rep p=.10"; "Rep p=.20";
    ]
    rows

(* Example-count sweep used by Table 6 and Figure 1 (left): fractions of
   the paper's 100/200 ... 2000/4000 ladder, scaled to the generated
   workload. *)
let example_ladder (w : Workload.t) =
  let np = List.length w.Workload.pos in
  List.filter_map
    (fun frac ->
      let p = max 5 (int_of_float (frac *. float_of_int np)) in
      if p > np then None else Some (p, 2 * p))
    [ 0.25; 0.5; 0.75; 1.0 ]

let table6 ?folds ?n () =
  let w = Imdb_omdb.generate ?n `Three_mds in
  let w =
    Workload.inject_violations w ~p:0.10 ~seed:w.Workload.config.Config.seed
  in
  (* The paper contrasts km = 5 with km = 2 here; we contrast km = 2 with
     km = 1 — same qualitative comparison (the larger km is the slower)
     within this machine's budget. *)
  let sweep km =
    List.map
      (fun (np, nn) ->
        let w' =
          Workload.with_examples (with_km w km) ~pos:np ~neg:nn
            ~seed:w.Workload.config.Config.seed
        in
        ((np, nn), evaluate ?folds Baselines.Dlearn_cfd w'))
      (example_ladder w)
  in
  let k5 = sweep 2 and k2 = sweep 1 in
  let header =
    "Metric"
    :: (List.map (fun ((p, n), _) -> Printf.sprintf "km=2 %d/%d" p n) k5
       @ List.map (fun ((p, n), _) -> Printf.sprintf "km=1 %d/%d" p n) k2)
  in
  let rows =
    [
      "F1" :: List.map (fun (_, r) -> f2 r.f1) (k5 @ k2);
      "Time" :: List.map (fun (_, r) -> secs r.seconds) (k5 @ k2);
    ]
  in
  table "Table 6: IMDB+OMDB (3 MDs, CFD violations) scaling #examples (#P/#N)"
    header rows

let table7 ?folds ?n () =
  let w = Imdb_omdb.generate ?n `Three_mds in
  let w =
    Workload.inject_violations w ~p:0.10 ~seed:w.Workload.config.Config.seed
  in
  let w = with_km w 5 in
  let runs =
    List.map (fun d -> (d, evaluate ?folds Baselines.Dlearn_cfd (with_depth w d)))
      [ 2; 3; 4; 5 ]
  in
  table "Table 7: effect of the number of iterations d (km=5)"
    ("Metric" :: List.map (fun (d, _) -> Printf.sprintf "d=%d" d) runs)
    [
      "F1" :: List.map (fun (_, r) -> f2 r.f1) runs;
      "Time" :: List.map (fun (_, r) -> secs r.seconds) runs;
    ]
    ~plots:
      [
        ( "F1 vs iteration depth", "F1",
          List.map (fun (d, r) -> (Printf.sprintf "d=%d" d, r.f1)) runs );
        ( "learning time vs iteration depth", "seconds",
          List.map (fun (d, r) -> (Printf.sprintf "d=%d" d, r.seconds)) runs );
      ]

let figure1_examples ?folds ?n () =
  let w = Imdb_omdb.generate ?n `Three_mds in
  let w = with_km w 2 in
  let runs =
    List.map
      (fun (np, nn) ->
        let w' =
          Workload.with_examples w ~pos:np ~neg:nn
            ~seed:w.Workload.config.Config.seed
        in
        ((np, nn), evaluate ?folds Baselines.Dlearn w'))
      (example_ladder w)
  in
  table "Figure 1 (left): F1 and time vs #examples (km=2, 3 MDs)"
    ("Metric"
    :: List.map (fun ((p, n), _) -> Printf.sprintf "%d/%d" p n) runs)
    [
      "F1" :: List.map (fun (_, r) -> f2 r.f1) runs;
      "Time" :: List.map (fun (_, r) -> secs r.seconds) runs;
    ]
    ~plots:
      [
        ( "F1 vs #examples", "F1",
          List.map (fun ((p, n), r) -> (Printf.sprintf "%d/%d" p n, r.f1)) runs );
        ( "learning time vs #examples", "seconds",
          List.map
            (fun ((p, n), r) -> (Printf.sprintf "%d/%d" p n, r.seconds))
            runs );
      ]

let figure1_sample_size ?folds ?n ~km () =
  let w = with_km (Imdb_omdb.generate ?n `Three_mds) km in
  let runs =
    List.map
      (fun s -> (s, evaluate ?folds Baselines.Dlearn (with_sample_size w s)))
      [ 5; 10; 15; 20 ]
  in
  table
    (Printf.sprintf "Figure 1 (%s): F1 and time vs sample size (km=%d, 3 MDs)"
       (if km = 2 then "middle" else "right")
       km)
    ("Metric" :: List.map (fun (s, _) -> Printf.sprintf "sample=%d" s) runs)
    [
      "F1" :: List.map (fun (_, r) -> f2 r.f1) runs;
      "Time" :: List.map (fun (_, r) -> secs r.seconds) runs;
    ]
    ~plots:
      [
        ( "F1 vs sample size", "F1",
          List.map (fun (s, r) -> (Printf.sprintf "sample=%d" s, r.f1)) runs );
        ( "learning time vs sample size", "seconds",
          List.map (fun (s, r) -> (Printf.sprintf "sample=%d" s, r.seconds)) runs );
      ]

let qualitative_definitions ?n () =
  let w = Walmart_amazon.generate ?n () in
  let buf = Buffer.create 1024 in
  List.iter
    (fun system ->
      let ctx =
        Baselines.make_context system w.Workload.config w.Workload.db
          w.Workload.mds w.Workload.cfds
      in
      let result =
        Learner.learn ctx ~pos:w.Workload.pos ~neg:w.Workload.neg
      in
      Buffer.add_string buf
        (Printf.sprintf "--- %s over %s ---\n" (Baselines.name system)
           w.Workload.name);
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "%s\n(positive covered=%d, negative covered=%d)\n\n"
               (Dlearn_logic.Clause.to_string s.Learner.clause)
               s.Learner.pos_covered s.Learner.neg_covered))
        result.Learner.stats;
      if result.Learner.stats = [] then Buffer.add_string buf "(empty definition)\n\n")
    [ Baselines.Dlearn; Baselines.Castor_clean ];
  Buffer.contents buf
