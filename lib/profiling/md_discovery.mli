(** Matching-dependency discovery from similarity statistics, after
    MDedup's observation (the paper's [38]) that good MDs connect attribute
    pairs whose values match selectively: many values find a match, and
    mostly a unique one. *)

type stats = {
  left_values : int;  (** distinct non-null values on the left *)
  matched : int;  (** left values with at least one match ≥ threshold *)
  ambiguous : int;
      (** matched left values whose runner-up match scores within [margin]
          of the best — the similarity cannot tell the candidates apart *)
  coverage : float;  (** matched / left_values *)
  ambiguity : float;  (** ambiguous / matched (0 when nothing matches) *)
}

(** [attribute_stats ?measure ?margin ~threshold left lpos right rpos]
    computes the matching statistics of one attribute pair ([margin]
    defaults to 0.1). *)
val attribute_stats :
  ?measure:Dlearn_similarity.Combined.measure ->
  ?margin:float ->
  threshold:float ->
  Dlearn_relation.Relation.t ->
  int ->
  Dlearn_relation.Relation.t ->
  int ->
  stats

(** [discover ?measure ?threshold ?min_coverage ?max_ambiguity db left right]
    proposes MDs between every comparable attribute pair of the two
    relations whose statistics pass the thresholds (defaults: coverage ≥
    0.5, ambiguity ≤ 0.5, similarity threshold 0.7). *)
val discover :
  ?measure:Dlearn_similarity.Combined.measure ->
  ?threshold:float ->
  ?min_coverage:float ->
  ?max_ambiguity:float ->
  ?margin:float ->
  Dlearn_relation.Database.t ->
  string ->
  string ->
  (Dlearn_constraints.Md.t * stats) list
