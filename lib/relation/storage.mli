(** Directory-based persistence for whole databases.

    A database is stored as one [manifest.txt] plus one CSV per relation.
    The manifest records each relation's name and schema, one line per
    relation: [name|attr1:domain,attr2:domain,...] with domain ∈
    {int, float, string}. Values round-trip through {!Value.to_string} /
    {!Value.of_string}, with the schema's domain used to keep strings that
    happen to look numeric as strings. *)

(** [save db dir] writes [dir/manifest.txt] and [dir/<relation>.csv] for
    every relation, creating [dir] if needed. *)
val save : Database.t -> string -> unit

(** [load dir] reads a database saved by {!save}.
    @raise Sys_error / [Invalid_argument] on missing or malformed files. *)
val load : string -> Database.t
