open Dlearn_relation
open Dlearn_constraints
module Obs = Dlearn_obs.Obs

type ground_entry = {
  ground : Dlearn_logic.Clause.t;
  lock : Mutex.t;
      (* guards every mutable field below: the lazily-memoized caches are
         hit concurrently when coverage fans out over domains *)
  mutable cfd_apps : Dlearn_logic.Clause.t list option;
  mutable repairs : Dlearn_logic.Clause.t list option;
  mutable target : Dlearn_logic.Subsumption.target option;
  mutable repair_targets : Dlearn_logic.Subsumption.target list option;
  mutable prefilter_target : Dlearn_logic.Subsumption.target option;
}

(* Incremental-coverage counters on the Obs registry ([coverage.*]
   names): bumped from inside parallel fills via the registry's
   per-domain shards, read merged by the learner's logging. The registry
   is process-wide, so contexts share the counters; readers interested in
   one run diff values around it (as the learner and tests do). *)
type cover_stats = {
  tested : Obs.counter; (* verdicts computed by running a predicate *)
  inherited : Obs.counter; (* positives inherited from the ARMG parent *)
  cache_hits : Obs.counter; (* verdicts found in the cross-seed cache *)
  pruned : Obs.counter; (* candidates cut short by the score bound *)
}

type t = {
  config : Config.t;
  db : Database.t;
  mds : Md.t list;
  cfds : Cfd.t list;
  rng : Random.State.t;
  sim_indexes : (string * int, Dlearn_similarity.Sim_index.t) Hashtbl.t;
  sim_lock : Mutex.t;
  ground_cache : (string, ground_entry) Hashtbl.t;
  ground_lock : Mutex.t;
  (* Dense example ids: every pos/neg tuple the coverage engine sees is
     interned once; bitsets are indexed by these ids. One shared space for
     positives and negatives — an id identifies a tuple, not a polarity. *)
  example_ids : (string, int) Hashtbl.t;
  example_lock : Mutex.t;
  (* canonical clause -> known coverage verdicts, shared across seeds *)
  cover_cache : Cover_set.entry Cover_set.Clause_tbl.t;
  cover_lock : Mutex.t;
  cover_stats : cover_stats;
}

let create config db mds cfds =
  let target_name = Schema.name config.Config.target in
  List.iter
    (fun (md : Md.t) ->
      if Md.mentions md target_name then
        invalid_arg
          (Printf.sprintf
             "Context.create: MD %s mentions the target relation %s"
             md.Md.id target_name);
      List.iter
        (fun rel ->
          if not (Database.mem db rel) then
            invalid_arg
              (Printf.sprintf "Context.create: MD %s mentions unknown relation %s"
                 md.Md.id rel))
        [ md.Md.left_rel; md.Md.right_rel ])
    mds;
  {
    config;
    db;
    mds;
    cfds;
    rng = Random.State.make [| config.Config.seed |];
    sim_indexes = Hashtbl.create 8;
    sim_lock = Mutex.create ();
    ground_cache = Hashtbl.create 256;
    ground_lock = Mutex.create ();
    example_ids = Hashtbl.create 256;
    example_lock = Mutex.create ();
    cover_cache = Cover_set.Clause_tbl.create 256;
    cover_lock = Mutex.create ();
    cover_stats =
      {
        tested = Obs.counter "coverage.tested";
        inherited = Obs.counter "coverage.inherited";
        cache_hits = Obs.counter "coverage.cache_hits";
        pruned = Obs.counter "coverage.pruned";
      };
  }

let pool t = Dlearn_parallel.Pool.get t.config.Config.num_domains

(* Building an index is expensive but happens once per (relation,
   attribute); holding the lock across the build deduplicates the work
   when several domains miss simultaneously. *)
let sim_index t rel pos =
  Mutex.protect t.sim_lock (fun () ->
      match Hashtbl.find_opt t.sim_indexes (rel, pos) with
      | Some idx -> idx
      | None ->
          let relation = Database.find t.db rel in
          let values = Relation.distinct_values relation pos in
          let idx =
            Dlearn_similarity.Sim_index.of_values
              ~measure:t.config.Config.sim.Md.measure
              ~jobs:t.config.Config.num_domains values
          in
          Hashtbl.add t.sim_indexes (rel, pos) idx;
          idx)

let example_key e = Tuple.to_string e

(* Intern a tuple into the dense id space. Ids are assigned in first-seen
   order; duplicates of one tuple share an id. *)
let example_id t e =
  let key = example_key e in
  Mutex.protect t.example_lock (fun () ->
      match Hashtbl.find_opt t.example_ids key with
      | Some id -> id
      | None ->
          let id = Hashtbl.length t.example_ids in
          Hashtbl.add t.example_ids key id;
          id)

let example_count t =
  Mutex.protect t.example_lock (fun () -> Hashtbl.length t.example_ids)

(* The cache entry of a clause, created on first use. Callers must key on
   the prepared record's canonical form — [Clause_norm.normalize] output
   when [Config.normalize_clauses] is on (alpha-variants share an entry),
   [Clause.canonical] otherwise; the entry's own lock guards its bitsets,
   this lookup only guards the table. *)
let cover_entry t clause =
  Mutex.protect t.cover_lock (fun () ->
      match Cover_set.Clause_tbl.find_opt t.cover_cache clause with
      | Some e -> e
      | None ->
          let e = Cover_set.entry () in
          Cover_set.Clause_tbl.add t.cover_cache clause e;
          e)

let is_searchable_attr t rel pos =
  match t.config.Config.searchable_attrs with
  | [] -> true
  | declared -> (
      match Database.find_opt t.db rel with
      | None -> false
      | Some relation ->
          let schema = Relation.schema relation in
          pos < Schema.arity schema
          && List.exists
               (fun (r, a) ->
                 String.equal r rel
                 && String.equal a (Schema.attr_name schema pos))
               declared)

let is_constant_attr t rel pos =
  match Database.find_opt t.db rel with
  | None -> false
  | Some relation ->
      let schema = Relation.schema relation in
      pos < Schema.arity schema
      && List.exists
           (fun (r, a) ->
             String.equal r rel && String.equal a (Schema.attr_name schema pos))
           t.config.Config.constant_attrs
