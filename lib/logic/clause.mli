(** Horn clauses of the extended language: one positive (head) literal and
    a body that may contain schema, similarity, restriction and repair
    literals (§3.2).

    The body keeps its construction order; bottom-clause construction is
    deterministic, which gives the total order on literals that the
    generalisation step (§4.2) relies on. *)

type t = {
  head : Literal.t;
  body : Literal.t list;
}

(** [make ~head body] builds a clause.
    @raise Invalid_argument if [head] is not a schema atom. *)
val make : head:Literal.t -> Literal.t list -> t

val head_pred : t -> string

val body_size : t -> int

(** [vars t] lists the variables of head and body, sorted. *)
val vars : t -> string list

(** [rel_body t] is the body restricted to schema atoms. *)
val rel_body : t -> Literal.t list

val repair_body : t -> Literal.t list

val equal : t -> t -> bool

(** [map_terms f t] rewrites every term of head and body. *)
val map_terms : (Term.t -> Term.t) -> t -> t

(** [head_connected t] keeps only the body literals reachable from the head
    through shared variables (closure over kept literals). Literals without
    variables are kept. This implements the paper's rule that dropping a
    schema literal also drops the repair and restriction literals whose
    only connection to the head ran through it. *)
val head_connected : t -> t

(** [remove_dangling_restrictions t] removes [Sim]/[Eq]/[Neq] literals that
    mention a variable not occurring in any schema atom (head included) nor
    in any repair literal — the paper's cleanup after applying repair
    literals (§3.2, end). *)
val remove_dangling_restrictions : t -> t

(** [canonical t] returns [t] with body literals sorted and deduplicated —
    used to compare clauses modulo body order (not modulo renaming). *)
val canonical : t -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
