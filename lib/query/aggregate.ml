open Dlearn_relation

type func =
  | Count
  | Count_distinct of int
  | Min of int
  | Max of int

let check_position answers pos =
  match answers with
  | [] -> ()
  | t :: _ ->
      if pos < 0 || pos >= Tuple.arity t then
        invalid_arg (Printf.sprintf "Aggregate: position %d out of range" pos)

let run ?limit db oracle clause ~group_by ~aggregate =
  let answers = Conjunctive.answers ?limit db oracle clause in
  List.iter (check_position answers) group_by;
  (match aggregate with
  | Count -> ()
  | Count_distinct p | Min p | Max p -> check_position answers p);
  let groups : (string, Value.t list * Tuple.t list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  List.iter
    (fun t ->
      let key_values = List.map (Tuple.get t) group_by in
      let key = String.concat "\x00" (List.map Value.to_string key_values) in
      match Hashtbl.find_opt groups key with
      | Some (_, members) -> members := t :: !members
      | None ->
          Hashtbl.add groups key (key_values, ref [ t ]);
          order := key :: !order)
    answers;
  List.rev_map
    (fun key ->
      let key_values, members = Hashtbl.find groups key in
      let members = !members in
      let agg =
        match aggregate with
        | Count -> Value.Int (List.length members)
        | Count_distinct p ->
            Value.Int
              (List.length
                 (List.sort_uniq Value.compare
                    (List.map (fun t -> Tuple.get t p) members)))
        | Min p ->
            List.fold_left
              (fun acc t ->
                let v = Tuple.get t p in
                if Value.compare v acc < 0 then v else acc)
              (Tuple.get (List.hd members) p)
              members
        | Max p ->
            List.fold_left
              (fun acc t ->
                let v = Tuple.get t p in
                if Value.compare v acc > 0 then v else acc)
              (Tuple.get (List.hd members) p)
              members
      in
      Tuple.make (key_values @ [ agg ]))
    !order
