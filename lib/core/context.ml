open Dlearn_relation
open Dlearn_constraints

type ground_entry = {
  ground : Dlearn_logic.Clause.t;
  lock : Mutex.t;
      (* guards every mutable field below: the lazily-memoized caches are
         hit concurrently when coverage fans out over domains *)
  mutable cfd_apps : Dlearn_logic.Clause.t list option;
  mutable repairs : Dlearn_logic.Clause.t list option;
  mutable target : Dlearn_logic.Subsumption.target option;
  mutable repair_targets : Dlearn_logic.Subsumption.target list option;
  mutable prefilter_target : Dlearn_logic.Subsumption.target option;
}

type t = {
  config : Config.t;
  db : Database.t;
  mds : Md.t list;
  cfds : Cfd.t list;
  rng : Random.State.t;
  sim_indexes : (string * int, Dlearn_similarity.Sim_index.t) Hashtbl.t;
  sim_lock : Mutex.t;
  ground_cache : (string, ground_entry) Hashtbl.t;
  ground_lock : Mutex.t;
}

let create config db mds cfds =
  let target_name = Schema.name config.Config.target in
  List.iter
    (fun (md : Md.t) ->
      if Md.mentions md target_name then
        invalid_arg
          (Printf.sprintf
             "Context.create: MD %s mentions the target relation %s"
             md.Md.id target_name);
      List.iter
        (fun rel ->
          if not (Database.mem db rel) then
            invalid_arg
              (Printf.sprintf "Context.create: MD %s mentions unknown relation %s"
                 md.Md.id rel))
        [ md.Md.left_rel; md.Md.right_rel ])
    mds;
  {
    config;
    db;
    mds;
    cfds;
    rng = Random.State.make [| config.Config.seed |];
    sim_indexes = Hashtbl.create 8;
    sim_lock = Mutex.create ();
    ground_cache = Hashtbl.create 256;
    ground_lock = Mutex.create ();
  }

let pool t = Dlearn_parallel.Pool.get t.config.Config.num_domains

(* Building an index is expensive but happens once per (relation,
   attribute); holding the lock across the build deduplicates the work
   when several domains miss simultaneously. *)
let sim_index t rel pos =
  Mutex.protect t.sim_lock (fun () ->
      match Hashtbl.find_opt t.sim_indexes (rel, pos) with
      | Some idx -> idx
      | None ->
          let relation = Database.find t.db rel in
          let values = Relation.distinct_values relation pos in
          let idx =
            Dlearn_similarity.Sim_index.of_values
              ~measure:t.config.Config.sim.Md.measure values
          in
          Hashtbl.add t.sim_indexes (rel, pos) idx;
          idx)

let example_key e = Tuple.to_string e

let is_searchable_attr t rel pos =
  match t.config.Config.searchable_attrs with
  | [] -> true
  | declared -> (
      match Database.find_opt t.db rel with
      | None -> false
      | Some relation ->
          let schema = Relation.schema relation in
          pos < Schema.arity schema
          && List.exists
               (fun (r, a) ->
                 String.equal r rel
                 && String.equal a (Schema.attr_name schema pos))
               declared)

let is_constant_attr t rel pos =
  match Database.find_opt t.db rel with
  | None -> false
  | Some relation ->
      let schema = Relation.schema relation in
      pos < Schema.arity schema
      && List.exists
           (fun (r, a) ->
             String.equal r rel && String.equal a (Schema.attr_name schema pos))
           t.config.Config.constant_attrs
