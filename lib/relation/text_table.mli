(** Aligned plain-text tables, used by the benchmark harness to print
    paper-style result tables and by examples to show relations. *)

(** [render ~header rows] renders an ASCII table with a header row, a rule
    under it, and one line per row; columns are padded to the widest cell.
    Rows shorter than the header are padded with empty cells. *)
val render : header:string list -> string list list -> string

(** [print ~header rows] is [print_string (render ~header rows)]. *)
val print : header:string list -> string list list -> unit

(** [of_relation ?limit r] renders the first [limit] (default 20) tuples of
    [r] with attribute names as header. *)
val of_relation : ?limit:int -> Relation.t -> string
