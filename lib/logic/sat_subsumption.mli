(** The [`Sat] θ-subsumption engine: ground instantiation into an
    incremental CDCL solver ({!Sat_core}).

    A candidate clause C is flattened against a prepared bottom clause D
    as a boolean matching problem: one {e selector} variable per
    (C-literal, D-literal candidate) pairing, at-least-one /
    at-most-one selection per literal, {e binding} variables
    [b(v,t)] ("θ maps variable v to D term t") kept consistent by
    selector→binding implications and at-most-one-term-per-variable
    clauses, and similarity / Eq / Neq semantics enforced by conditional
    clauses plus a model-checking (CEGAR) loop that re-runs the exact
    reference finish logic — [resolve_checks], deferred environment
    similarity branches, repair connectivity — and blocks or lemmatizes
    refuted models.

    The solver is {e reused} across the ARMG chain: candidates sharing a
    head against the same target are encoded into one growing solver,
    every body literal guarded by its own assumption variable, and a
    solve assumes exactly the current candidate's literal set. Conflict
    clauses learned refuting one candidate stay in the database and
    prune every later candidate that shares literals (counted by
    [sat.reused_clause_hits]). Set [DLEARN_SAT_REUSE=off] to rebuild the
    solver per solve instead — verdicts are identical either way
    (pinned by test). See [docs/SUBSUMPTION.md]. *)

(** A target clause D as the encoder needs it — the fields of
    [Subsumption]'s prepared target plus closures over its private
    finish logic, so this module stays independent of that type. *)
type view = {
  d_literals : Literal.t array;
  rel_ids : string -> int list;  (** D literal ids by predicate *)
  repair_ids : string -> int list;  (** D repair ids by origin *)
  sim_ids : int list;
  env : Clause_env.t;
  term_tab : Term.t array;
  key_tids : int array array;
  connectivity_ok : int list -> bool;
      (** Definition 4.4's condition on the mapped D-literal ids *)
  attached_repairs : int -> int list;
      (** the repair ids Definition 4.4 requires mapped whenever the
          given non-repair D literal is in the image (empty for repair
          literals); id 0 gives the head's obligations *)
  resolve_residue : Substitution.t -> Literal.t list -> bool;
      (** the shared union-find / fresh-constant Eq-Neq residue check *)
  cache : cache;
}

(** Per-target solver cache, threaded through [Subsumption.prepare] so
    the ARMG chain against one example shares a solver. Thread-safe. *)
and cache

val new_cache : unit -> cache

val subsumes :
  ?budget:int ->
  ?repair_connectivity:bool ->
  view ->
  Clause.t ->
  [ `Subsumed of Substitution.t | `Not_subsumed | `Budget_exhausted ]

(** Process-wide counters, aggregated on the [sat.*] Obs registry names
    (see docs/OBSERVABILITY.md). [solves] counts solver invocations
    (CEGAR iterations included); [reused_clause_hits] counts
    propagations or conflicts caused by clauses learned in an earlier
    solve — the cross-candidate refutation-sharing signal. *)
type stats = {
  solves : int;
  propagations : int;
  conflicts : int;
  learned : int;
  restarts : int;
  reused_clause_hits : int;
  encode_seconds : float;
  solve_seconds : float;
}

val stats : unit -> stats

val reset_stats : unit -> unit
