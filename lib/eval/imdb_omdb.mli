(** The IMDB + OMDB workload (§6.1.1).

    Two movie databases describing the same underlying movies under
    different title formats, with typos, abbreviated cast and writer
    names, and franchise sequels that make title matching ambiguous. The
    target relation is [dramaRestrictedMovies(imdbId)] — drama movies
    rated R — where the id exists only in IMDB, genres exist in both, and
    the rating exists only in OMDB, so the concept is unlearnable without
    crossing the databases.

    Variants: [`One_md] matches titles only; [`Three_mds] additionally
    matches cast-member and writer names (which contain many exact
    matches, the regime where the paper's Castor-Exact is competitive). *)

(** [generate ?n ?seed variant] builds the workload; [n] (default 150) is
    the number of underlying movies; positives are every drama-R movie,
    negatives twice as many sampled others. *)
val generate : ?n:int -> ?seed:int -> [ `One_md | `Three_mds ] -> Workload.t
