(** MD enforcement and stable instances (§2.2, Definition 2.2).

    Enforcing an MD on a pair of tuples whose compared attributes are
    similar but whose unified attributes differ replaces both unified
    values with the canonical fresh merged value [v_{a,b}] ({!Md.Merge}).
    A database is {e stable} when no such pair remains. Iterating
    enforcement from a database in every possible order yields its stable
    instances; there can be several when one value matches two distinct
    values (Example 2.3). This module enumerates them for small databases
    — it exists to test the commutativity theorems (4.11, 4.12) and to
    ground the semantics; DLearn itself never materialises instances. *)

type match_site = {
  md : Md.t;
  left_id : int;  (** tuple id within the MD's left relation *)
  right_id : int;
}

(** [unresolved_matches ~sim db mds] lists the enforceable sites: pairs
    similar on every compared attribute and differing on the unified one.
    Relations absent from [db] are skipped. *)
val unresolved_matches :
  sim:Md.sim_spec ->
  Dlearn_relation.Database.t ->
  Md.t list ->
  match_site list

(** [enforce db site] is the immediate result of enforcing the site's MD
    (Definition 2.2): a fresh database differing only in the two unified
    values, both set to their merge. *)
val enforce : Dlearn_relation.Database.t -> match_site -> Dlearn_relation.Database.t

val is_stable :
  sim:Md.sim_spec -> Dlearn_relation.Database.t -> Md.t list -> bool

(** [stable_instances ?cap ~sim db mds] enumerates the distinct stable
    instances reachable from [db], deduplicated on content, at most [cap]
    (default 64) of them. Intended for test-sized databases. *)
val stable_instances :
  ?cap:int ->
  sim:Md.sim_spec ->
  Dlearn_relation.Database.t ->
  Md.t list ->
  Dlearn_relation.Database.t list
