(** Similarity index with n-gram blocking.

    DLearn precomputes pairs of similar values (§5). The index stores the
    distinct values of one attribute; a query finds the top-[km] stored
    values whose similarity to the query string reaches a threshold. To
    avoid the quadratic scan, candidates are restricted to values sharing
    at least one character n-gram with the query (blocking) — exactness is
    checked in tests against the brute-force scan for the paper's
    operator. *)

type t

(** [create ?n ?measure values] indexes the distinct strings of [values].
    [n] (default 3) is the blocking gram size. *)
val create : ?n:int -> ?measure:Combined.measure -> string list -> t

(** [of_values ?n ?measure vs] indexes the string renderings of [vs],
    skipping nulls. *)
val of_values :
  ?n:int ->
  ?measure:Combined.measure ->
  Dlearn_relation.Value.t list ->
  t

val size : t -> int

(** [query t ~km ~threshold s] returns up to [km] stored values with
    similarity ≥ [threshold], best first, ties broken by string order.
    The query string itself is excluded only by similarity, not identity —
    an exact duplicate scores 1.0 and is returned. *)
val query : t -> km:int -> threshold:float -> string -> (string * float) list

(** [query_brute t ~km ~threshold s] is [query] without blocking — the
    reference implementation used for the ablation bench and tests. *)
val query_brute :
  t -> km:int -> threshold:float -> string -> (string * float) list

(** [match_pairs ?n ?measure ~km ~threshold left right] returns, for each
    string of [left] (deduplicated), its top-[km] matches within [right],
    as [(left_value, right_value, score)] triples. *)
val match_pairs :
  ?n:int ->
  ?measure:Combined.measure ->
  km:int ->
  threshold:float ->
  string list ->
  string list ->
  (string * string * float) list
