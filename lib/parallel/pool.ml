let src = Logs.Src.create "dlearn.pool" ~doc:"Domain pool counters"

module Log = (val Logs.src_log src : Logs.LOG)
module Obs = Dlearn_obs.Obs

(* One batch of chunks. [next] hands out chunk indexes, [completed] counts
   finished ones; the first exception wins the [failed] slot and is
   re-raised by the submitter once the batch drains. *)
type job = {
  run : int -> unit;
  num_chunks : int;
  next : int Atomic.t;
  completed : int Atomic.t;
  failed : (exn * Printexc.raw_backtrace) option Atomic.t;
}

type t = {
  size : int; (* participating domains, including the submitter *)
  mutable workers : unit Domain.t list;
  m : Mutex.t; (* guards job/generation/stopping *)
  cond : Condition.t; (* job arrival and shutdown *)
  done_m : Mutex.t;
  done_c : Condition.t; (* batch completion *)
  mutable job : job option;
  mutable generation : int;
  mutable stopping : bool;
  submit_m : Mutex.t; (* serializes submitters *)
  (* Counters live on the Obs registry under [pool.<size>.*] — pools of
     one size are process-wide singletons (see [get]), so the registry
     name is the pool's identity. The busy array stays local: one slot
     per participant, indexed by position, which the registry's
     per-domain shards cannot represent. *)
  tasks_c : Obs.counter;
  chunks_c : Obs.counter;
  items_c : Obs.counter;
  participate_h : Obs.histogram;
  busy : float array; (* slot 0 = submitter, 1.. = workers *)
}

type stats = {
  domains : int;
  tasks : int;
  chunks : int;
  items : int;
  busy_seconds : float array;
}

(* True while this domain is executing a pool task; nested batches fall
   back to the sequential path instead of deadlocking on the pool. *)
let inside : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)
let in_worker () = !(Domain.DLS.get inside)

(* Claim and run chunks until the batch is drained. Runs in workers and in
   the submitting domain alike. *)
let participate pool job slot =
  let t0 = Unix.gettimeofday () in
  let flag = Domain.DLS.get inside in
  let previously = !flag in
  flag := true;
  let rec claim () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.num_chunks then begin
      (try job.run i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set job.failed None (Some (e, bt))));
      Obs.incr pool.chunks_c;
      let finished = 1 + Atomic.fetch_and_add job.completed 1 in
      if finished = job.num_chunks then begin
        Mutex.lock pool.done_m;
        Condition.broadcast pool.done_c;
        Mutex.unlock pool.done_m
      end;
      claim ()
    end
  in
  claim ();
  flag := previously;
  let dt = Unix.gettimeofday () -. t0 in
  pool.busy.(slot) <- pool.busy.(slot) +. dt;
  let dt_ns = int_of_float (dt *. 1e9) in
  Obs.observe_ns pool.participate_h dt_ns;
  if Obs.recording () then
    Obs.emit_event
      ~args:[ ("slot", string_of_int slot) ]
      ~name:"pool.participate"
      ~start_ns:(int_of_float (t0 *. 1e9))
      ~dur_ns:dt_ns ()

let worker_loop pool slot =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock pool.m;
    while (not pool.stopping) && pool.generation = !seen do
      Condition.wait pool.cond pool.m
    done;
    if pool.stopping then Mutex.unlock pool.m
    else begin
      seen := pool.generation;
      let job = pool.job in
      Mutex.unlock pool.m;
      (match job with Some j -> participate pool j slot | None -> ());
      loop ()
    end
  in
  loop ()

let create ~num_domains =
  let size = max 1 num_domains in
  let pool =
    {
      size;
      workers = [];
      m = Mutex.create ();
      cond = Condition.create ();
      done_m = Mutex.create ();
      done_c = Condition.create ();
      job = None;
      generation = 0;
      stopping = false;
      submit_m = Mutex.create ();
      tasks_c = Obs.counter (Printf.sprintf "pool.%d.tasks" size);
      chunks_c = Obs.counter (Printf.sprintf "pool.%d.chunks" size);
      items_c = Obs.counter (Printf.sprintf "pool.%d.items" size);
      participate_h = Obs.histogram (Printf.sprintf "pool.%d.participate" size);
      busy = Array.make size 0.0;
    }
  in
  pool.workers <-
    List.init (size - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let num_domains pool = pool.size

let stats pool =
  {
    domains = pool.size;
    tasks = Obs.value pool.tasks_c;
    chunks = Obs.value pool.chunks_c;
    items = Obs.value pool.items_c;
    busy_seconds = Array.copy pool.busy;
  }

let log_stats pool =
  let s = stats pool in
  Log.debug (fun m ->
      m "pool[%d domains]: %d tasks, %d chunks, %d items, busy %s" s.domains
        s.tasks s.chunks s.items
        (String.concat "/"
           (Array.to_list
              (Array.map (fun b -> Printf.sprintf "%.2fs" b) s.busy_seconds))))

let shutdown pool =
  let workers =
    Mutex.protect pool.m (fun () ->
        if pool.stopping then []
        else begin
          pool.stopping <- true;
          Condition.broadcast pool.cond;
          let ws = pool.workers in
          pool.workers <- [];
          ws
        end)
  in
  List.iter Domain.join workers;
  if workers <> [] then log_stats pool

(* Publish the job, work on it, then wait for stragglers. The submit lock
   keeps concurrent submitters (and their jobs) strictly ordered. *)
let run_job pool job =
  Mutex.lock pool.submit_m;
  Obs.incr pool.tasks_c;
  Mutex.lock pool.m;
  pool.job <- Some job;
  pool.generation <- pool.generation + 1;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.m;
  participate pool job 0;
  Mutex.lock pool.done_m;
  while Atomic.get job.completed < job.num_chunks do
    Condition.wait pool.done_c pool.done_m
  done;
  Mutex.unlock pool.done_m;
  Mutex.unlock pool.submit_m;
  match Atomic.get job.failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* Chunks per participant: small enough to even out skewed item costs,
   large enough to keep the claim counter off the hot path. *)
let chunking = 8

let sequential pool = pool.size <= 1 || in_worker ()

let map pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if sequential pool || n < 2 then Array.map f arr
  else begin
    let results = Array.make n None in
    let chunk_size = max 1 (n / (pool.size * chunking)) in
    let num_chunks = (n + chunk_size - 1) / chunk_size in
    let run i =
      let lo = i * chunk_size in
      let hi = min n (lo + chunk_size) in
      for j = lo to hi - 1 do
        results.(j) <- Some (f arr.(j))
      done;
      Obs.add pool.items_c (hi - lo)
    in
    run_job pool
      {
        run;
        num_chunks;
        next = Atomic.make 0;
        completed = Atomic.make 0;
        failed = Atomic.make None;
      };
    Array.map (function Some v -> v | None -> assert false) results
  end

let iter pool f arr = ignore (map pool (fun x -> f x) arr)

let filter_count pool p arr =
  let n = Array.length arr in
  if sequential pool || n < 2 then
    Array.fold_left (fun acc x -> if p x then acc + 1 else acc) 0 arr
  else begin
    let total = Atomic.make 0 in
    let chunk_size = max 1 (n / (pool.size * chunking)) in
    let num_chunks = (n + chunk_size - 1) / chunk_size in
    let run i =
      let lo = i * chunk_size in
      let hi = min n (lo + chunk_size) in
      let count = ref 0 in
      for j = lo to hi - 1 do
        if p arr.(j) then incr count
      done;
      ignore (Atomic.fetch_and_add total !count);
      Obs.add pool.items_c (hi - lo)
    in
    run_job pool
      {
        run;
        num_chunks;
        next = Atomic.make 0;
        completed = Atomic.make 0;
        failed = Atomic.make None;
      };
    Atomic.get total
  end

(* Pack [p 0 .. p (n-1)] into a fresh bit buffer, bit [i] at byte
   [i lsr 3] / position [i land 7]. Chunks are whole byte ranges, so no
   two domains ever read-modify-write the same byte — plain writes are
   race-free without atomics. *)
let fill pool ~n p =
  let nbytes = (max 0 n + 7) / 8 in
  let buf = Bytes.make nbytes '\000' in
  let fill_byte byte =
    let lo = byte lsl 3 in
    let hi = min n (lo + 8) in
    let v = ref 0 in
    for i = lo to hi - 1 do
      if p i then v := !v lor (1 lsl (i - lo))
    done;
    if !v <> 0 then Bytes.set buf byte (Char.chr !v)
  in
  if sequential pool || n < 16 then
    for byte = 0 to nbytes - 1 do
      fill_byte byte
    done
  else begin
    let chunk_bytes = max 1 (nbytes / (pool.size * chunking)) in
    let num_chunks = (nbytes + chunk_bytes - 1) / chunk_bytes in
    let run i =
      let lo = i * chunk_bytes in
      let hi = min nbytes (lo + chunk_bytes) in
      for byte = lo to hi - 1 do
        fill_byte byte
      done;
      Obs.add pool.items_c ((hi - lo) * 8)
    in
    run_job pool
      {
        run;
        num_chunks;
        next = Atomic.make 0;
        completed = Atomic.make 0;
        failed = Atomic.make None;
      }
  end;
  buf

let map_list pool f l = Array.to_list (map pool f (Array.of_list l))

let filter_count_list pool p l = filter_count pool p (Array.of_list l)

let filter_list pool p l =
  let arr = Array.of_list l in
  let keep = map pool p arr in
  let out = ref [] in
  for i = Array.length arr - 1 downto 0 do
    if keep.(i) then out := arr.(i) :: !out
  done;
  !out

(* Process-wide pools, one per size, shut down at exit so no domain is
   left blocked on a condition variable when the runtime tears down. *)
let registry : (int, t) Hashtbl.t = Hashtbl.create 4
let registry_m = Mutex.create ()
let at_exit_installed = ref false

let get num_domains =
  let size = max 1 num_domains in
  Mutex.protect registry_m (fun () ->
      match Hashtbl.find_opt registry size with
      | Some pool -> pool
      | None ->
          let pool = create ~num_domains:size in
          Hashtbl.add registry size pool;
          if not !at_exit_installed then begin
            at_exit_installed := true;
            at_exit (fun () ->
                let pools =
                  Mutex.protect registry_m (fun () ->
                      Hashtbl.fold (fun _ p acc -> p :: acc) registry [])
                in
                List.iter shutdown pools)
          end;
          pool)
