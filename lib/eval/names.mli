(** Deterministic pools of plausible names for the workload generators:
    movie titles (with franchise sequels, so that similarity matching is
    genuinely ambiguous the way "Star Wars" is in the paper's §1), person
    names, product names, paper titles and venues. *)

(** [movie_title rng] draws a base title; roughly one in four titles
    belongs to a franchise and carries a roman-numeral sequel suffix. *)
val movie_title : Random.State.t -> string

val person_name : Random.State.t -> string

val product_name : Random.State.t -> string

val paper_title : Random.State.t -> string

val venue : Random.State.t -> string

val genres : string list

val ratings : string list

val countries : string list

val languages : string list

val product_categories : string list

val brands : string list
