(** Conditions of repair literals (§3.2).

    A condition [c] of a repair literal [V_c(x, v_x)] is a conjunction of
    [=], [≠] and [≈] atoms over the terms of the clause. Evaluation is
    relative to an environment supplied by the enclosing clause (its
    equality and similarity literals) — see {!Clause_env}. *)

type atom =
  | Ceq of Term.t * Term.t
  | Cneq of Term.t * Term.t
  | Csim of Term.t * Term.t

type t = atom list
(** Conjunction; [[]] is the always-true condition. *)

val atom_equal : atom -> atom -> bool

val equal : t -> t -> bool

(** [map_terms f c] rewrites every term in [c] — used when a repair
    literal's application substitutes into the conditions of the others. *)
val map_terms : (Term.t -> Term.t) -> t -> t

val vars : t -> string list

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** [eval ~eq ~neq ~sim c] evaluates the conjunction with the given atom
    oracles; each oracle answers for a pair of terms. *)
val eval :
  eq:(Term.t -> Term.t -> bool) ->
  neq:(Term.t -> Term.t -> bool) ->
  sim:(Term.t -> Term.t -> bool) ->
  t ->
  bool
