(* Movie integration: the paper's IMDB+OMDB scenario (§6.1.1).

   The target dramaRestrictedMovies(imdbId) needs the rating from OMDB and
   the id from IMDB; titles differ across sources. We learn it with DLearn
   and with the Castor-NoMD baseline, showing why ignoring the matching
   dependencies fails.

   Run with: dune exec examples/movie_integration.exe *)

open Dlearn_relation
open Dlearn_core
open Dlearn_eval

let show_relation db name =
  Printf.printf "%s:\n%s\n" name
    (Text_table.of_relation ~limit:5 (Database.find db name))

let () =
  let w = Imdb_omdb.generate ~n:100 `One_md in
  Printf.printf "%s\n\n" (Workload.describe w);
  show_relation w.Workload.db "imdb_movies";
  show_relation w.Workload.db "omdb_movies";
  show_relation w.Workload.db "omdb_rating";

  let train_pos, test_pos =
    match Cross_validation.folds ~k:4 ~seed:1 ~pos:w.Workload.pos ~neg:w.Workload.neg with
    | f :: _ -> (f.Cross_validation.train_pos, f.Cross_validation.test_pos)
    | [] -> assert false
  in
  let train_neg, test_neg =
    match Cross_validation.folds ~k:4 ~seed:1 ~pos:w.Workload.pos ~neg:w.Workload.neg with
    | f :: _ -> (f.Cross_validation.train_neg, f.Cross_validation.test_neg)
    | [] -> assert false
  in
  List.iter
    (fun system ->
      Printf.printf "=== %s ===\n" (Baselines.name system);
      let ctx =
        Baselines.make_context system w.Workload.config w.Workload.db
          w.Workload.mds w.Workload.cfds
      in
      let result = Learner.learn ctx ~pos:train_pos ~neg:train_neg in
      Printf.printf "learned in %.1fs:\n%s\n" result.Learner.seconds
        (Dlearn_logic.Definition.to_string result.Learner.definition);
      let c =
        Metrics.of_predictions
          ~predict:(Learner.predictor ctx result.Learner.definition)
          ~pos:test_pos ~neg:test_neg
      in
      Printf.printf "test: %s\n\n" (Format.asprintf "%a" Metrics.pp c))
    [ Baselines.Dlearn; Baselines.Castor_nomd ]
