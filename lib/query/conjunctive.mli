(** Direct evaluation of conjunctive queries over a database.

    This is the coverage-testing approach the paper contrasts with
    θ-subsumption (§4.3): translate the clause into a query and evaluate
    it over the stored relations. The body may contain schema atoms,
    similarity literals (answered by the given similarity operator),
    equality and inequality literals; repair literals are rejected —
    repairs are the subsumption engine's job.

    Evaluation is by backtracking joins over the per-attribute hash
    indexes: at each step the most-bound schema atom is selected, its
    candidates enumerated through the most selective bound position, and
    restriction literals are checked as soon as both sides are bound. *)

type oracle = {
  similar : Dlearn_relation.Value.t -> Dlearn_relation.Value.t -> bool;
}

(** [oracle_of_spec spec] answers similarity with {!Dlearn_constraints.Md.similar}. *)
val oracle_of_spec : Dlearn_constraints.Md.sim_spec -> oracle

(** [answers ?limit db oracle clause] enumerates the distinct head-variable
    bindings (as tuples, in head-argument order) for which the body is
    satisfiable; at most [limit] (default 1000) answers.
    @raise Invalid_argument if the clause contains repair literals, or if
    a body atom's relation is unknown or has the wrong arity. *)
val answers :
  ?limit:int ->
  Dlearn_relation.Database.t ->
  oracle ->
  Dlearn_logic.Clause.t ->
  Dlearn_relation.Tuple.t list

(** [entails db oracle clause example] — does the clause derive the example
    tuple? Head arguments are bound to the example's values and the body
    is tested for satisfiability. *)
val entails :
  Dlearn_relation.Database.t ->
  oracle ->
  Dlearn_logic.Clause.t ->
  Dlearn_relation.Tuple.t ->
  bool
