(** The systems compared in the paper's evaluation (§6.1.3).

    Each system is a preprocessing recipe plus a learner configuration:

    - [Castor_nomd]: learn over the original database ignoring MDs and
      CFDs entirely;
    - [Castor_exact]: MD attributes may join, but only through exact
      matches — similarity search is replaced by index lookup and no
      repair literals are produced;
    - [Castor_clean]: resolve heterogeneity up front by rewriting each
      value of an MD's left attribute to its single most similar value on
      the right (the paper's same similarity operator), then learn over
      the unified database with exact matching;
    - [Dlearn]: the full system over MDs (CFDs ignored — the paper's
      Table 4 setting);
    - [Dlearn_repaired]: minimal-repair the CFD violations first, then
      run DLearn with MDs only (Table 5's baseline);
    - [Dlearn_cfd]: the full system over MDs and CFDs (Table 5). *)

type system =
  | Castor_nomd
  | Castor_exact
  | Castor_clean
  | Dlearn
  | Dlearn_repaired
  | Dlearn_cfd

val name : system -> string

val all : system list

(** [resolve_entities ~sim db mds] is Castor-Clean's preprocessing: a copy
    of [db] where every value of each MD's left unified attribute is
    replaced by its best match (similarity ≥ threshold) among the right
    attribute's values. *)
val resolve_entities :
  sim:Dlearn_constraints.Md.sim_spec ->
  Dlearn_relation.Database.t ->
  Dlearn_constraints.Md.t list ->
  Dlearn_relation.Database.t

(** [make_context system config db mds cfds] prepares the context for a
    system: database preprocessing and configuration adjustments applied. *)
val make_context :
  system ->
  Config.t ->
  Dlearn_relation.Database.t ->
  Dlearn_constraints.Md.t list ->
  Dlearn_constraints.Cfd.t list ->
  Context.t
