(** The serve wire protocol: length-prefixed JSON frames (docs/SERVE.md).

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of compact JSON. Requests are [{"op": ..., ...}] objects;
    responses carry [{"ok":true, ...}] or [{"ok":false,"error":...}].
    All reads and writes are blocking and exact. *)

exception Protocol_error of string
(** Malformed frame: oversized length prefix or unparsable JSON. *)

val max_frame : int
(** Hard ceiling on payload bytes in either direction (64 MiB). *)

val read_frame : Unix.file_descr -> string
(** @raise End_of_file on a cleanly closed peer.
    @raise Protocol_error on an oversized frame. *)

val write_frame : Unix.file_descr -> string -> unit

val read_json : Unix.file_descr -> Json.t
(** {!read_frame} + parse.
    @raise Protocol_error when the payload is not JSON. *)

val write_json : Unix.file_descr -> Json.t -> unit

(** {2 Envelopes} *)

val ok : (string * Json.t) list -> Json.t
(** [{"ok":true, ...fields}] *)

val error : string -> Json.t
(** [{"ok":false,"error":msg}] *)

val request : string -> (string * Json.t) list -> Json.t
(** [{"op":op, ...fields}] *)

val op_of_request : Json.t -> string
(** @raise Protocol_error when the ["op"] field is missing. *)

val is_ok : Json.t -> bool
val error_of_response : Json.t -> string
