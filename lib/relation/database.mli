(** Database instances: a catalog of named relations.

    This is the paper's database instance [I] of schema [S] — the
    background knowledge over which definitions are learned.

    Relations may be registered {b lazily} ({!add_lazy}, used by
    [Storage.load ~lazy_load:true]): the loader thunk runs on first
    access and the result is cached, so a CLI run that touches two of
    ten relations never pays for the other eight. Lookups in a fully
    materialized database are a single atomic load plus the same hash
    probe as before; while any thunk is outstanding {b every} lookup is
    serialized under an internal lock, so concurrent finds can never
    observe the catalog mid-way through a force's [Hashtbl.replace].
    The summaries ({!total_tuples}, {!pp_summary}, {!copy}) never force:
    pending relations are reported (and copied) as pending. *)

type t

val create : unit -> t

(** [add_relation t r] registers [r] under its schema name.
    @raise Invalid_argument if a relation with that name exists. *)
val add_relation : t -> Relation.t -> unit

(** [add_lazy t name load] registers a pending relation: [load] runs on
    the first {!find} (or {!materialize}) and must produce a relation
    named [name].
    @raise Invalid_argument if a relation with that name exists. *)
val add_lazy : t -> string -> (unit -> Relation.t) -> unit

(** [create_relation t schema] creates, registers and returns an empty
    relation. *)
val create_relation : t -> Schema.t -> Relation.t

(** [find t name] returns the relation named [name], forcing it first if
    it is still pending.
    @raise Not_found when absent. *)
val find : t -> string -> Relation.t

val find_opt : t -> string -> Relation.t option

val mem : t -> string -> bool

(** [is_loaded t name] is [true] iff [name] is registered and
    materialized (never forces). *)
val is_loaded : t -> string -> bool

(** Number of registered relations still pending. *)
val pending_count : t -> int

(** Force every pending relation, in registration order. *)
val materialize : t -> unit

(** [relations t] lists relations in registration order (forcing any
    still pending). *)
val relations : t -> Relation.t list

val relation_names : t -> string list

(** Total tuples across {b loaded} relations; pending relations count
    for zero (never forced). *)
val total_tuples : t -> int

(** [copy t] deep-copies every loaded relation — used when producing
    repairs. Pending relations stay pending in the copy, sharing the
    loader thunk (it re-runs on the copy's first access). *)
val copy : t -> t

(** Never forces: pending relations print as [name: pending]. *)
val pp_summary : Format.formatter -> t -> unit

(** [snapshot t] is an immutable point-in-time view: every relation is a
    {!Relation.snapshot} sharing the live stores (O(relations) overall).
    Pending relations {b are} forced first — a version handle needs the
    data. Used by {!Vdb} to mint version handles. *)
val snapshot : t -> t

(** [replace_relation t r] rebinds the loaded relation named like [r] to
    [r] — the versioned layer's commit hook for copy-on-write updates.
    @raise Invalid_argument when no loaded relation has that name. *)
val replace_relation : t -> Relation.t -> unit
