(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6) on the generated workloads, plus Bechamel
   micro-benchmarks of the core operations and the ablations called out in
   DESIGN.md.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe table4          # one experiment
     dune exec bench/main.exe -- table5 --folds 3 --n 100

   Absolute numbers differ from the paper (simulated data, laptop scale);
   EXPERIMENTS.md records the measured-vs-paper comparison. *)

open Dlearn_relation
open Dlearn_core
open Dlearn_eval

(* ------------------------------------------------------------------ *)
(* Paper tables and figures.                                           *)
(* ------------------------------------------------------------------ *)

let print_table t =
  print_endline (Experiment.render t);
  print_newline ()

let timed name f =
  let t0 = Unix.gettimeofday () in
  f ();
  Printf.printf "[%s took %.0fs]\n\n%!" name (Unix.gettimeofday () -. t0)

let table4 ~folds ~n () = print_table (Experiment.table4 ~folds ?n ())
let table5 ~folds ~n () = print_table (Experiment.table5 ~folds ?n ())
let table6 ~folds ~n () = print_table (Experiment.table6 ~folds ?n ())
let table7 ~folds ~n () = print_table (Experiment.table7 ~folds ?n ())

let fig1left ~folds ~n () = print_table (Experiment.figure1_examples ~folds ?n ())

let fig1mid ~folds ~n () =
  print_table (Experiment.figure1_sample_size ~folds ?n ~km:2 ())

let fig1right ~folds ~n () =
  print_table (Experiment.figure1_sample_size ~folds ?n ~km:5 ())

let defs ~folds:_ ~n () =
  print_endline "== Learned definitions over Walmart+Amazon (sec 6.2.1) ==";
  print_endline (Experiment.qualitative_definitions ?n ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks and ablations.                            *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let w = Imdb_omdb.generate ~n:80 `One_md in
  let w = Experiment.with_km w 2 in
  let ctx =
    Baselines.make_context Baselines.Dlearn w.Workload.config w.Workload.db
      w.Workload.mds w.Workload.cfds
  in
  let seed = List.hd w.Workload.pos in
  let other = List.nth w.Workload.pos 1 in
  let negative = List.hd w.Workload.neg in
  let bottom = Bottom_clause.build ctx Bottom_clause.Variable seed in
  let prepared = Coverage.prepare ctx bottom in
  (* Force the caches so the benchmarks measure steady-state costs. *)
  ignore (Coverage.covers_positive ctx prepared seed);
  ignore (Coverage.covers_positive ctx prepared other);
  ignore (Coverage.covers_negative ctx prepared negative);
  let ground_entry = Bottom_clause.ground ctx seed in
  let ground_target = Coverage.ground_target ctx ground_entry in
  let a = "The Hidden Fortress (1984)" and b = "The Hidden Fortress - 1984" in
  let titles =
    Relation.distinct_values (Database.find w.Workload.db "omdb_movies") 1
    |> List.map Value.to_string
  in
  let index = Dlearn_similarity.Sim_index.create titles in
  let dirty =
    Workload.inject_violations w ~p:0.10 ~seed:1
  in
  let dirty_ctx =
    Baselines.make_context Baselines.Dlearn_cfd dirty.Workload.config
      dirty.Workload.db dirty.Workload.mds dirty.Workload.cfds
  in
  let dirty_bottom = Bottom_clause.build dirty_ctx Bottom_clause.Variable seed in
  let dirty_prepared = Coverage.prepare dirty_ctx dirty_bottom in
  ignore (Coverage.covers_positive dirty_ctx dirty_prepared seed);
  [
    Test.make ~name:"similarity/smith-waterman-gotoh"
      (Staged.stage (fun () -> Dlearn_similarity.Smith_waterman.similarity a b));
    Test.make ~name:"similarity/paper-operator"
      (Staged.stage (fun () -> Dlearn_similarity.Combined.paper a b));
    Test.make ~name:"sim-index/query-blocked"
      (Staged.stage (fun () ->
           Dlearn_similarity.Sim_index.query index ~km:5 ~threshold:0.7
             "The Hidden Fortress"));
    Test.make ~name:"sim-index/query-brute (ablation 1)"
      (Staged.stage (fun () ->
           Dlearn_similarity.Sim_index.query_brute index ~km:5 ~threshold:0.7
             "The Hidden Fortress"));
    Test.make ~name:"bottom-clause/build"
      (Staged.stage (fun () ->
           Bottom_clause.build ctx Bottom_clause.Variable seed));
    Test.make ~name:"subsumption/fast-path"
      (Staged.stage (fun () ->
           Dlearn_logic.Subsumption.subsumes_target_bool bottom ground_target));
    Test.make ~name:"repair/enumerate-repaired-clauses"
      (Staged.stage (fun () ->
           Dlearn_logic.Clause_repair.repaired_clauses ~state_cap:512
             ~result_cap:16 bottom));
    Test.make ~name:"coverage/positive"
      (Staged.stage (fun () -> Coverage.covers_positive ctx prepared other));
    Test.make ~name:"coverage/negative"
      (Staged.stage (fun () -> Coverage.covers_negative ctx prepared negative));
    Test.make ~name:"coverage/positive-full-repairs"
      (Staged.stage (fun () ->
           Coverage.covers_positive dirty_ctx dirty_prepared seed));
    Test.make ~name:"coverage/positive-cfd-split (ablation 3)"
      (Staged.stage (fun () ->
           Coverage.covers_positive_cfd_split dirty_ctx dirty_prepared seed));
    Test.make ~name:"generalization/armg-step"
      (Staged.stage (fun () -> Generalization.armg ctx bottom other));
  ]

let run_micro () =
  let open Bechamel in
  print_endline "== Micro-benchmarks (Bechamel; ns per run) ==";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 500) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let rows =
    List.filter_map
      (fun test ->
        match Test.elements test with
        | [ elt ] ->
            let m = Benchmark.run cfg [ instance ] elt in
            let result = Analyze.one ols instance m in
            let ns =
              match Analyze.OLS.estimates result with
              | Some [ est ] -> est
              | _ -> nan
            in
            Some
              [
                Test.Elt.name elt;
                (if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
                 else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
                 else Printf.sprintf "%.0f ns" ns);
              ]
        | _ -> None)
      (micro_tests ())
  in
  Text_table.print ~header:[ "operation"; "time/run" ] rows;
  print_newline ()

(* Ablation 2: the candidate-substitution beam width in generalisation. *)
let ablation_beam ~folds ~n () =
  print_endline "== Ablation 2: ARMG beam width (IMDB+OMDB one MD, km=2) ==";
  let w = Imdb_omdb.generate ?n `One_md in
  let w = Experiment.with_km w 2 in
  let rows =
    List.map
      (fun beam ->
        let w' =
          {
            w with
            Workload.config = { w.Workload.config with Config.armg_beam = beam };
          }
        in
        let r = Experiment.evaluate ~folds Baselines.Dlearn w' in
        [
          string_of_int beam;
          Printf.sprintf "%.2f" r.Experiment.f1;
          Printf.sprintf "%.1fs" r.Experiment.seconds;
        ])
      [ 1; 4; 16; 32 ]
  in
  Text_table.print ~header:[ "beam"; "F1"; "time/fold" ] rows;
  print_newline ()

(* Ablation 4: CFD left-hand-side repairs use the minimal scheme; compare
   bottom-clause sizes with and without CFDs to show the added repair
   machinery stays bounded. *)
let ablation_clause_size ~folds:_ ~n () =
  print_endline "== Ablation 4: repair literals added per bottom clause ==";
  let w = Imdb_omdb.generate ?n `Three_mds in
  let dirty = Workload.inject_violations w ~p:0.10 ~seed:5 in
  let measure name (w : Workload.t) system =
    let ctx =
      Baselines.make_context system w.Workload.config w.Workload.db
        w.Workload.mds w.Workload.cfds
    in
    let sizes =
      List.map
        (fun e ->
          let c = Bottom_clause.build ctx Bottom_clause.Variable e in
          ( Dlearn_logic.Clause.body_size c,
            List.length (Dlearn_logic.Clause.repair_body c) ))
        (Workload.sample (Random.State.make [| 3 |]) 10 w.Workload.pos)
    in
    let avg f =
      float_of_int (List.fold_left (fun a x -> a + f x) 0 sizes)
      /. float_of_int (List.length sizes)
    in
    [ name; Printf.sprintf "%.1f" (avg fst); Printf.sprintf "%.1f" (avg snd) ]
  in
  Text_table.print
    ~header:[ "setting"; "avg literals"; "avg repair literals" ]
    [
      measure "clean, MDs only" w Baselines.Dlearn;
      measure "p=0.10, MDs only" dirty Baselines.Dlearn;
      measure "p=0.10, MDs+CFDs" dirty Baselines.Dlearn_cfd;
    ];
  print_newline ()

(* Parallel coverage scaling: the same coverage workload on a sequential
   context and on the domain pool, per dataset. The verdicts are
   bitwise-identical by construction (test/test_parallel.ml); this bench
   reports the wall-clock ratio. On a single-core machine the speedup
   hovers around 1x (or below, for the pool overhead) — the point of
   reporting it honestly rather than hard-coding an expectation. *)
let bench_jobs = ref 4

(* --report: attach the unified observability report (span durations and
   counters, Obs.report_json) to the BENCH_*.json files, so a committed
   bench run carries its own stage breakdown. *)
let bench_report = ref false

(* --engine: restrict bench_subsumption to a single engine — the CI smoke
   mode. The cross-engine count check and the JSON artifact need the full
   race, so both are skipped under the restriction. *)
let bench_engine : Dlearn_logic.Subsumption.engine option ref = ref None

let obs_field () =
  if !bench_report then
    Printf.sprintf ",\n  \"obs\": %s\n" (Dlearn_obs.Obs.report_json ())
  else "\n"

let bench_parallel ~folds:_ ~n () =
  let jobs = max 2 !bench_jobs in
  Printf.printf "== Parallel coverage: 1 vs %d domains ==\n" jobs;
  let datasets =
    [
      ("imdb1", fun () -> Imdb_omdb.generate ?n `One_md);
      ("imdb3", fun () -> Imdb_omdb.generate ?n `Three_mds);
      ("walmart", fun () -> Walmart_amazon.generate ?n ());
    ]
  in
  let rows =
    List.map
      (fun (name, make) ->
        let w = Experiment.with_km (make ()) 2 in
        let pos = w.Workload.pos and neg = w.Workload.neg in
        let seeds =
          List.filteri (fun i _ -> i < 4) pos
        in
        let time_with num_domains =
          let config =
            { w.Workload.config with Config.num_domains = num_domains }
          in
          let ctx =
            Baselines.make_context Baselines.Dlearn config w.Workload.db
              w.Workload.mds w.Workload.cfds
          in
          let preps =
            List.map
              (fun e ->
                Coverage.prepare ctx
                  (Bottom_clause.build ctx Bottom_clause.Variable e))
              seeds
          in
          (* Warm every per-example and per-clause cache so the timing
             compares the subsumption fan-out, not one-time setup. *)
          List.iter
            (fun prep -> ignore (Coverage.coverage ctx prep ~pos ~neg))
            preps;
          let t0 = Unix.gettimeofday () in
          List.iter
            (fun prep -> ignore (Coverage.coverage ctx prep ~pos ~neg))
            preps;
          let dt = Unix.gettimeofday () -. t0 in
          Dlearn_parallel.Pool.log_stats (Dlearn_parallel.Pool.get num_domains);
          dt
        in
        let t_seq = time_with 1 in
        let t_par = time_with jobs in
        [
          name;
          Printf.sprintf "%.3fs" t_seq;
          Printf.sprintf "%.3fs" t_par;
          Printf.sprintf "%.2fx" (t_seq /. t_par);
        ])
      datasets
  in
  Text_table.print
    ~header:
      [
        "dataset";
        "sequential";
        Printf.sprintf "%d domains" jobs;
        "speedup";
      ]
    rows;
  print_newline ()

(* Incremental coverage: replay an ARMG chain — the hill-climb's actual
   access pattern — under three settings: from-scratch sequential,
   incremental sequential (verdict cache + monotone inheritance +
   score-bound pruning) and incremental over the domain pool. Ground
   caches are pre-warmed in every setting, so the measured difference is
   exactly the incremental engine's contribution, not one-time setup.
   Emits BENCH_coverage.json with the raw numbers. *)
let bench_coverage ~folds:_ ~n () =
  let jobs = max 2 !bench_jobs in
  (* Jobs sweep: always include the sequential baseline, every power of
     two up to the requested count, and the requested count itself. *)
  let sweep_jobs =
    let steps = List.filter (fun j -> j <= jobs) [ 2; 4; 8 ] in
    let steps = if List.mem jobs steps then steps else steps @ [ jobs ] in
    1 :: steps
  in
  Printf.printf
    "== Incremental coverage: from-scratch vs incremental (jobs sweep %s) ==\n"
    (String.concat "/" (List.map string_of_int sweep_jobs));
  let datasets =
    [
      ("imdb1", fun () -> Imdb_omdb.generate ?n `One_md);
      ("imdb3", fun () -> Imdb_omdb.generate ?n `Three_mds);
      ("walmart", fun () -> Walmart_amazon.generate ?n ());
    ]
  in
  let results =
    List.map
      (fun (name, make) ->
        let w = Experiment.with_km (make ()) 2 in
        let pos = w.Workload.pos in
        (* The climb scores candidates against a bounded negative sample
           (Config.climb_neg_cap); mirror that access pattern. *)
        let neg =
          List.filteri
            (fun i _ -> i < w.Workload.config.Config.climb_neg_cap)
            w.Workload.neg
        in
        let make_ctx ~num_domains ~incremental =
          let config =
            {
              w.Workload.config with
              Config.num_domains;
              incremental_coverage = incremental;
            }
          in
          let ctx =
            Baselines.make_context Baselines.Dlearn config w.Workload.db
              w.Workload.mds w.Workload.cfds
          in
          (* Warm the per-example ground caches — shared by both paths. *)
          List.iter
            (fun e ->
              let entry = Bottom_clause.ground ctx e in
              ignore (Coverage.ground_target ctx entry);
              ignore (Coverage.ground_repair_targets ctx entry);
              ignore (Coverage.prefilter_target ctx entry))
            (pos @ neg);
          ctx
        in
        (* One monotone ARMG chain, built once and replayed identically in
           every setting. *)
        let chain =
          let ctx = make_ctx ~num_domains:1 ~incremental:false in
          let seed = List.hd pos in
          let bottom = Bottom_clause.build ctx Bottom_clause.Variable seed in
          let rec grow clause acc = function
            | [] -> List.rev acc
            | e :: rest -> (
                if List.length acc > 6 then List.rev acc
                else
                  match Generalization.armg ctx clause e with
                  | Some c when not (Dlearn_logic.Clause.equal c clause) ->
                      grow c (c :: acc) rest
                  | _ -> grow clause acc rest)
          in
          grow bottom [ bottom ] (List.tl pos)
        in
        let time_scratch () =
          let ctx = make_ctx ~num_domains:1 ~incremental:false in
          let t0 = Unix.gettimeofday () in
          List.iter
            (fun clause ->
              let prep = Coverage.prepare ctx clause in
              ignore (Coverage.coverage ctx prep ~pos ~neg))
            chain;
          Unix.gettimeofday () -. t0
        in
        let time_incremental num_domains =
          let ctx = make_ctx ~num_domains ~incremental:true in
          (* Spawn the worker domains outside the timed section: pool
             creation is once per process, not per coverage call. *)
          ignore (Dlearn_parallel.Pool.get num_domains);
          let t0 = Unix.gettimeofday () in
          let bound = Atomic.make min_int in
          let parent = ref Coverage.Bitset.empty in
          List.iter
            (fun clause ->
              let prep = Coverage.prepare ctx clause in
              let _p, _n, cov, complete =
                Coverage.score_candidate ctx prep ~assume:!parent ~pos ~neg
                  ~bound
              in
              (* the chain is monotone, so each fully-evaluated element
                 becomes the next parent, exactly like the climb *)
              if complete then parent := cov)
            chain;
          Unix.gettimeofday () -. t0
        in
        (* Best-of-3: the chain replays are short (tens of ms on the small
           datasets), so a single sample is scheduler-noise-dominated; the
           minimum is the standard robust estimator for wall-clock
           microbenchmarks. Applied symmetrically to both paths. *)
        let best_of k f =
          List.fold_left (fun acc _ -> Float.min acc (f ())) (f ())
            (List.init (k - 1) Fun.id)
        in
        let t_scratch = best_of 3 time_scratch in
        let sweep =
          List.map
            (fun j -> (j, best_of 3 (fun () -> time_incremental j)))
            sweep_jobs
        in
        let t_incr = List.assoc 1 sweep in
        let t_par = List.assoc jobs sweep in
        ( name,
          List.length chain,
          List.length pos,
          List.length neg,
          t_scratch,
          t_incr,
          t_par,
          sweep ))
      datasets
  in
  Text_table.print
    ~header:
      [
        "dataset";
        "chain";
        "from-scratch";
        "incremental";
        Printf.sprintf "incr %dd" jobs;
        "speedup";
        Printf.sprintf "speedup %dd" jobs;
      ]
    (List.map
       (fun (name, chain, _, _, ts, ti, tp, _) ->
         [
           name;
           string_of_int chain;
           Printf.sprintf "%.3fs" ts;
           Printf.sprintf "%.3fs" ti;
           Printf.sprintf "%.3fs" tp;
           Printf.sprintf "%.2fx" (ts /. ti);
           Printf.sprintf "%.2fx" (ts /. tp);
         ])
       results);
  print_newline ();
  List.iter
    (fun (name, _, _, _, ts, _, _, sweep) ->
      Printf.printf "%s sweep: %s\n" name
        (String.concat "  "
           (List.map
              (fun (j, t) -> Printf.sprintf "%dd %.3fs (%.2fx)" j t (ts /. t))
              sweep)))
    results;
  print_newline ();
  (* Machine-readable record of the perf trajectory. *)
  let oc = open_out "BENCH_coverage.json" in
  let n_str = match n with Some v -> string_of_int v | None -> "null" in
  Printf.fprintf oc "{\n  \"bench\": \"coverage\",\n  \"n\": %s,\n  \"jobs\": %d,\n  \"datasets\": [\n"
    n_str jobs;
  List.iteri
    (fun i (name, chain, npos, nneg, ts, ti, tp, sweep) ->
      let sweep_json =
        String.concat ", "
          (List.map
             (fun (j, t) ->
               Printf.sprintf
                 "{\"jobs\": %d, \"incremental_s\": %.6f, \
                  \"speedup_parallel\": %.3f}"
                 j t (ts /. t))
             sweep)
      in
      Printf.fprintf oc
        "    {\"dataset\": \"%s\", \"chain_length\": %d, \"pos\": %d, \
         \"neg\": %d,\n\
        \     \"from_scratch_seq_s\": %.6f, \"incremental_seq_s\": %.6f, \
         \"incremental_par_s\": %.6f,\n\
        \     \"speedup_incremental\": %.3f, \"speedup_parallel\": %.3f,\n\
        \     \"sweep\": [%s]}%s\n"
        name chain npos nneg ts ti tp (ts /. ti) (ts /. tp) sweep_json
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ]%s}\n" (obs_field ());
  close_out oc;
  Printf.printf "wrote BENCH_coverage.json\n\n"

(* θ-subsumption engines: replay the same ARMG-chain coverage workload as
   [bench_coverage] — the hill-climb's actual access pattern — through the
   backtracking baseline, the CSP kernel and the SAT ground encoding,
   sequentially and from scratch, so the measured difference is exactly
   the matching engine. All engines must produce identical (p, n) counts
   on every chain element. Emits BENCH_subsumption.json with per-engine
   times, CSP node counts, SAT conflict/reuse counters, and geometric-mean
   speedups over the non-trivial datasets (imdb3, walmart). [--engine]
   restricts the race to one engine (CI smoke; no artifact written). *)
let bench_subsumption ~folds:_ ~n () =
  let module Subsumption = Dlearn_logic.Subsumption in
  let module Sat = Dlearn_logic.Sat_subsumption in
  let engines =
    match !bench_engine with
    | Some e -> [ e ]
    | None -> [ `Backtrack; `Csp; `Sat ]
  in
  Printf.printf "== Theta-subsumption engines: %s ==\n"
    (String.concat " vs " (List.map Subsumption.engine_name engines));
  let datasets =
    [
      ("imdb1", fun () -> Imdb_omdb.generate ?n `One_md);
      ("imdb3", fun () -> Imdb_omdb.generate ?n `Three_mds);
      ("walmart", fun () -> Walmart_amazon.generate ?n ());
    ]
  in
  let results =
    List.map
      (fun (name, make) ->
        let w = Experiment.with_km (make ()) 2 in
        let pos = w.Workload.pos in
        let neg =
          List.filteri
            (fun i _ -> i < w.Workload.config.Config.climb_neg_cap)
            w.Workload.neg
        in
        let make_ctx engine =
          let config =
            {
              w.Workload.config with
              Config.num_domains = 1;
              incremental_coverage = false;
              subsumption_engine = engine;
            }
          in
          let ctx =
            Baselines.make_context Baselines.Dlearn config w.Workload.db
              w.Workload.mds w.Workload.cfds
          in
          List.iter
            (fun e ->
              let entry = Bottom_clause.ground ctx e in
              ignore (Coverage.ground_target ctx entry);
              ignore (Coverage.ground_repair_targets ctx entry);
              ignore (Coverage.prefilter_target ctx entry))
            (pos @ neg);
          ctx
        in
        let chain =
          let ctx = make_ctx `Backtrack in
          let seed = List.hd pos in
          let bottom = Bottom_clause.build ctx Bottom_clause.Variable seed in
          let rec grow clause acc = function
            | [] -> List.rev acc
            | e :: rest -> (
                if List.length acc > 6 then List.rev acc
                else
                  match Generalization.armg ctx clause e with
                  | Some c when not (Dlearn_logic.Clause.equal c clause) ->
                      grow c (c :: acc) rest
                  | _ -> grow clause acc rest)
          in
          grow bottom [ bottom ] (List.tl pos)
        in
        let replay engine =
          let ctx = make_ctx engine in
          Subsumption.reset_stats ();
          Sat.reset_stats ();
          let t0 = Unix.gettimeofday () in
          let counts =
            List.map
              (fun clause ->
                let prep = Coverage.prepare ctx clause in
                Coverage.coverage ctx prep ~pos ~neg)
              chain
          in
          let dt = Unix.gettimeofday () -. t0 in
          (engine, (dt, counts, Subsumption.stats (), Sat.stats ()))
        in
        let runs = List.map replay engines in
        (match runs with
        | (_, (_, counts0, _, _)) :: rest ->
            List.iter
              (fun (e, (_, counts, _, _)) ->
                if counts <> counts0 then
                  failwith
                    (Printf.sprintf
                       "%s: engine %s disagrees on coverage counts" name
                       (Subsumption.engine_name e)))
              rest
        | [] -> ());
        List.iter
          (fun (e, (_, _, cst, sst)) ->
            match e with
            | `Csp ->
                Printf.printf
                  "%s csp kernel: %d solves, %d nodes, %d propagations, %d \
                   wipeouts, %.3fs setup, %.3fs search\n\
                   %!"
                  name cst.Subsumption.solves cst.Subsumption.nodes
                  cst.Subsumption.propagations cst.Subsumption.wipeouts
                  cst.Subsumption.setup_seconds cst.Subsumption.search_seconds
            | `Sat ->
                Printf.printf
                  "%s sat engine: %d solves, %d conflicts, %d propagations, \
                   %d learned, %d restarts, %d reused-clause hits, %.3fs \
                   encode, %.3fs solve\n\
                   %!"
                  name sst.Sat.solves sst.Sat.conflicts sst.Sat.propagations
                  sst.Sat.learned sst.Sat.restarts sst.Sat.reused_clause_hits
                  sst.Sat.encode_seconds sst.Sat.solve_seconds
            | `Backtrack -> ())
          runs;
        (name, List.length chain, List.length pos, List.length neg, runs))
      datasets
  in
  let time_of e runs =
    match List.assoc_opt e runs with
    | Some (dt, _, _, _) -> dt
    | None -> nan
  in
  Text_table.print
    ~header:
      ([ "dataset"; "chain" ]
      @ List.map Subsumption.engine_name engines
      @ List.map
          (fun e -> Subsumption.engine_name e ^ " x")
          (match engines with _ :: tl -> tl | [] -> []))
    (List.map
       (fun (name, chain, _, _, runs) ->
         [ name; string_of_int chain ]
         @ List.map
             (fun e -> Printf.sprintf "%.3fs" (time_of e runs))
             engines
         @ List.map
             (fun e ->
               Printf.sprintf "%.2fx"
                 (time_of (List.hd engines) runs /. time_of e runs))
             (match engines with _ :: tl -> tl | [] -> []))
       results);
  match engines with
  | [ only ] ->
      Printf.printf
        "single-engine smoke (%s): count check and BENCH_subsumption.json \
         skipped\n\n"
        (Subsumption.engine_name only)
  | _ ->
      (* imdb1's replay is too small to measure reliably; the acceptance
         criterion is the geometric mean over the non-trivial datasets. *)
      let geo engine =
        let speedups =
          List.filter_map
            (fun (name, _, _, _, runs) ->
              if name = "imdb1" then None
              else Some (time_of `Backtrack runs /. time_of engine runs))
            results
        in
        exp
          (List.fold_left (fun acc s -> acc +. log s) 0. speedups
          /. float_of_int (List.length speedups))
      in
      let geo_csp = geo `Csp and geo_sat = geo `Sat in
      Printf.printf
        "geometric-mean speedup vs backtrack (imdb3, walmart): csp %.2fx, \
         sat %.2fx\n\n"
        geo_csp geo_sat;
      let oc = open_out "BENCH_subsumption.json" in
      let n_str = match n with Some v -> string_of_int v | None -> "null" in
      Printf.fprintf oc
        "{\n  \"bench\": \"subsumption\",\n  \"n\": %s,\n  \"datasets\": [\n"
        n_str;
      List.iteri
        (fun i (name, chain, npos, nneg, runs) ->
          let _, _, cst, _ = List.assoc `Csp runs in
          let _, _, _, sst = List.assoc `Sat runs in
          let tb = time_of `Backtrack runs
          and tc = time_of `Csp runs
          and ts = time_of `Sat runs in
          Printf.fprintf oc
            "    {\"dataset\": \"%s\", \"chain_length\": %d, \"pos\": %d, \
             \"neg\": %d,\n\
            \     \"backtrack_s\": %.6f, \"csp_s\": %.6f, \"sat_s\": %.6f, \
             \"speedup_csp\": %.3f, \"speedup_sat\": %.3f,\n\
            \     \"csp_solves\": %d, \"csp_nodes\": %d, \
             \"csp_propagations\": %d, \"csp_wipeouts\": %d,\n\
            \     \"csp_setup_s\": %.6f, \"csp_search_s\": %.6f,\n\
            \     \"sat_solves\": %d, \"sat_conflicts\": %d, \
             \"sat_propagations\": %d, \"sat_learned\": %d,\n\
            \     \"sat_restarts\": %d, \"sat_reused_clause_hits\": %d, \
             \"sat_encode_s\": %.6f, \"sat_solve_s\": %.6f}%s\n"
            name chain npos nneg tb tc ts (tb /. tc) (tb /. ts)
            cst.Subsumption.solves cst.Subsumption.nodes
            cst.Subsumption.propagations cst.Subsumption.wipeouts
            cst.Subsumption.setup_seconds cst.Subsumption.search_seconds
            sst.Sat.solves sst.Sat.conflicts sst.Sat.propagations
            sst.Sat.learned sst.Sat.restarts sst.Sat.reused_clause_hits
            sst.Sat.encode_seconds sst.Sat.solve_seconds
            (if i = List.length results - 1 then "" else ","))
        results;
      Printf.fprintf oc
        "  ],\n\
        \  \"geomean_speedup_nontrivial\": %.3f,\n\
        \  \"geomean_speedup_sat_nontrivial\": %.3f%s}\n"
        geo_csp geo_sat (obs_field ());
      close_out oc;
      Printf.printf "wrote BENCH_subsumption.json\n\n"

(* Clause normalization as the cover-cache key: replay the ARMG chain,
   then rescore an alpha-renamed, body-reversed variant of every chain
   element — the duplicate work a hill-climb generates when ARMG from
   different seeds yields alpha-variant candidates. With normalization
   off the variants recompute every verdict; with it on they collapse
   onto the chain's cover-cache entries, so the cross-seed hit rate must
   strictly improve. Also reports the learn.normalize span as a share of
   replay wall-clock (budget: < 5%). Emits BENCH_normalize.json. *)
let bench_normalize ~folds:_ ~n () =
  let module Obs = Dlearn_obs.Obs in
  let module Clause = Dlearn_logic.Clause in
  let module Term = Dlearn_logic.Term in
  Printf.printf "== Clause normalization: cover-cache hit rate off vs on ==\n";
  let datasets =
    [
      ("imdb1", fun () -> Imdb_omdb.generate ?n `One_md);
      ("imdb3", fun () -> Imdb_omdb.generate ?n `Three_mds);
      ("walmart", fun () -> Walmart_amazon.generate ?n ());
    ]
  in
  let results =
    List.map
      (fun (name, make) ->
        let w = Experiment.with_km (make ()) 2 in
        let pos = w.Workload.pos in
        let neg =
          List.filteri
            (fun i _ -> i < w.Workload.config.Config.climb_neg_cap)
            w.Workload.neg
        in
        let make_ctx ~normalize =
          let config =
            {
              w.Workload.config with
              Config.num_domains = 1;
              incremental_coverage = true;
              normalize_clauses = normalize;
            }
          in
          let ctx =
            Baselines.make_context Baselines.Dlearn config w.Workload.db
              w.Workload.mds w.Workload.cfds
          in
          (* Warm the per-example ground caches — shared by both modes. *)
          List.iter
            (fun e ->
              let entry = Bottom_clause.ground ctx e in
              ignore (Coverage.ground_target ctx entry);
              ignore (Coverage.ground_repair_targets ctx entry);
              ignore (Coverage.prefilter_target ctx entry))
            (pos @ neg);
          ctx
        in
        (* One monotone ARMG chain, built once and replayed in both
           modes. *)
        let chain =
          let ctx = make_ctx ~normalize:false in
          let seed = List.hd pos in
          let bottom = Bottom_clause.build ctx Bottom_clause.Variable seed in
          let rec grow clause acc = function
            | [] -> List.rev acc
            | e :: rest -> (
                if List.length acc > 6 then List.rev acc
                else
                  match Generalization.armg ctx clause e with
                  | Some c when not (Clause.equal c clause) ->
                      grow c (c :: acc) rest
                  | _ -> grow clause acc rest)
          in
          grow bottom [ bottom ] (List.tl pos)
        in
        (* Alpha-renamed, body-reversed variants: semantically identical
           clauses with different surface syntax, as produced by ARMG
           chains that start from a different seed example. *)
        let variants =
          List.map
            (fun c ->
              let renamed =
                Clause.map_terms
                  (function
                    | Term.Var v -> Term.var ("q_" ^ v) | t -> t)
                  c
              in
              Clause.make ~head:renamed.Clause.head
                (List.rev renamed.Clause.body))
            chain
        in
        let replay normalize =
          let ctx = make_ctx ~normalize in
          let tested = ctx.Context.cover_stats.Context.tested in
          let hits = ctx.Context.cover_stats.Context.cache_hits in
          let norm_hist = Obs.histogram "learn.normalize" in
          let tested0 = Obs.value tested and hits0 = Obs.value hits in
          let norm0 = (Obs.histogram_snapshot norm_hist).Obs.total_ns in
          let t0 = Unix.gettimeofday () in
          List.iter
            (fun clause ->
              let prep = Coverage.prepare ctx clause in
              ignore (Coverage.coverage ctx prep ~pos ~neg))
            (chain @ variants);
          let dt = Unix.gettimeofday () -. t0 in
          let d_tested = Obs.value tested - tested0 in
          let d_hits = Obs.value hits - hits0 in
          let norm_s =
            float_of_int
              ((Obs.histogram_snapshot norm_hist).Obs.total_ns - norm0)
            /. 1e9
          in
          let hit_rate =
            if d_tested + d_hits = 0 then 0.
            else float_of_int d_hits /. float_of_int (d_tested + d_hits)
          in
          (dt, d_tested, d_hits, hit_rate, norm_s)
        in
        let t_off, tested_off, hits_off, rate_off, _ = replay false in
        let t_on, tested_on, hits_on, rate_on, norm_s = replay true in
        (* The < 5% budget is against learn wall-clock, not the warm
           replay above — run one real learn and compare the
           learn.normalize span to the enclosing learn span. *)
        let learn_norm_s, learn_s =
          (* A cold context: real learns pay grounding and bottom-clause
             construction too, so the share is measured against the full
             pipeline, not the warm replay above. *)
          let config =
            {
              w.Workload.config with
              Config.num_domains = 1;
              incremental_coverage = true;
              normalize_clauses = true;
            }
          in
          let ctx =
            Baselines.make_context Baselines.Dlearn config w.Workload.db
              w.Workload.mds w.Workload.cfds
          in
          let norm_hist = Obs.histogram "learn.normalize" in
          let learn_hist = Obs.histogram "learn" in
          let n0 = (Obs.histogram_snapshot norm_hist).Obs.total_ns in
          let l0 = (Obs.histogram_snapshot learn_hist).Obs.total_ns in
          ignore (Learner.learn ctx ~pos ~neg);
          ( float_of_int
              ((Obs.histogram_snapshot norm_hist).Obs.total_ns - n0)
            /. 1e9,
            float_of_int
              ((Obs.histogram_snapshot learn_hist).Obs.total_ns - l0)
            /. 1e9 )
        in
        Printf.printf
          "%s: off %d tested / %d hits (%.1f%%) — on %d tested / %d hits \
           (%.1f%%), normalize %.4fs of %.3fs replay, %.4fs of %.3fs learn\n%!"
          name tested_off hits_off (100. *. rate_off) tested_on hits_on
          (100. *. rate_on) norm_s t_on learn_norm_s learn_s;
        ( name,
          List.length chain,
          t_off,
          t_on,
          tested_off,
          hits_off,
          rate_off,
          tested_on,
          hits_on,
          rate_on,
          norm_s,
          learn_norm_s,
          learn_s ))
      datasets
  in
  Text_table.print
    ~header:
      [
        "dataset";
        "chain";
        "off time";
        "on time";
        "hit-rate off";
        "hit-rate on";
        "learn share";
      ]
    (List.map
       (fun (name, chain, t_off, t_on, _, _, r_off, _, _, r_on, _, ln, l) ->
         [
           name;
           string_of_int chain;
           Printf.sprintf "%.3fs" t_off;
           Printf.sprintf "%.3fs" t_on;
           Printf.sprintf "%.1f%%" (100. *. r_off);
           Printf.sprintf "%.1f%%" (100. *. r_on);
           Printf.sprintf "%.2f%%" (100. *. ln /. l);
         ])
       results);
  print_newline ();
  List.iter
    (fun (name, _, _, _, _, _, r_off, _, _, r_on, _, _, _) ->
      if name <> "imdb1" && r_on <= r_off then
        Printf.printf
          "WARNING: %s hit rate did not improve (off %.3f, on %.3f)\n" name
          r_off r_on)
    results;
  let oc = open_out "BENCH_normalize.json" in
  let n_str = match n with Some v -> string_of_int v | None -> "null" in
  Printf.fprintf oc
    "{\n  \"bench\": \"normalize\",\n  \"n\": %s,\n  \"datasets\": [\n" n_str;
  List.iteri
    (fun i
         ( name,
           chain,
           t_off,
           t_on,
           tested_off,
           hits_off,
           rate_off,
           tested_on,
           hits_on,
           rate_on,
           norm_s,
           learn_norm_s,
           learn_s ) ->
      Printf.fprintf oc
        "    {\"dataset\": \"%s\", \"chain_length\": %d,\n\
        \     \"off\": {\"seconds\": %.6f, \"tested\": %d, \"cache_hits\": \
         %d, \"hit_rate\": %.4f},\n\
        \     \"on\": {\"seconds\": %.6f, \"tested\": %d, \"cache_hits\": \
         %d, \"hit_rate\": %.4f},\n\
        \     \"replay_normalize_s\": %.6f, \"learn_normalize_s\": %.6f,\n\
        \     \"learn_s\": %.6f, \"learn_normalize_share\": %.4f}%s\n"
        name chain t_off tested_off hits_off rate_off t_on tested_on hits_on
        rate_on norm_s learn_norm_s learn_s
        (learn_norm_s /. learn_s)
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ]%s}\n" (obs_field ());
  close_out oc;
  Printf.printf "wrote BENCH_normalize.json\n\n"

(* ------------------------------------------------------------------ *)
(* Scale: the 10⁵-tuple data path (docs/SCALE.md).                      *)
(* ------------------------------------------------------------------ *)

(* The seed repo's Sim_index, kept verbatim as the sequential baseline:
   one string-keyed posting table, no sharding, no length prefilter, no
   pool. [speedup_vs_legacy] in BENCH_scale.json is measured against
   this — the from-scratch baseline, as BENCH_coverage.json does for the
   incremental engine — while [speedup_parallel] isolates pure pool
   scaling (sharded jobs=1 vs jobs=j). *)
module Legacy_index = struct
  module Sim = Dlearn_similarity

  type t = {
    values : string array;
    by_gram : (string, int list ref) Hashtbl.t;
    n : int;
    measure : Sim.Combined.measure;
  }

  let create ?(n = 3) ?(measure = Sim.Combined.default) values =
    let distinct = List.sort_uniq String.compare values in
    let values = Array.of_list distinct in
    let by_gram = Hashtbl.create (Array.length values * 4) in
    Array.iteri
      (fun i v ->
        List.iter
          (fun g ->
            match Hashtbl.find_opt by_gram g with
            | Some ids -> ids := i :: !ids
            | None -> Hashtbl.add by_gram g (ref [ i ]))
          (Sim.Ngram.gram_set ~n v))
      values;
    { values; by_gram; n; measure }

  let rank_and_cut t ~km ~threshold s candidate_ids =
    let scored =
      List.filter_map
        (fun i ->
          let v = t.values.(i) in
          let score = Sim.Combined.similarity ~measure:t.measure s v in
          if score >= threshold then Some (v, score) else None)
        candidate_ids
    in
    let sorted =
      List.sort
        (fun (v1, s1) (v2, s2) ->
          match Float.compare s2 s1 with
          | 0 -> String.compare v1 v2
          | c -> c)
        scored
    in
    List.filteri (fun i _ -> i < km) sorted

  let query t ~km ~threshold s =
    let seen = Hashtbl.create 64 in
    let candidates = ref [] in
    List.iter
      (fun g ->
        match Hashtbl.find_opt t.by_gram g with
        | Some ids ->
            List.iter
              (fun i ->
                if not (Hashtbl.mem seen i) then begin
                  Hashtbl.add seen i ();
                  candidates := i :: !candidates
                end)
              !ids
        | None -> ())
      (Sim.Ngram.gram_set ~n:t.n s);
    rank_and_cut t ~km ~threshold s !candidates

  let match_pairs ~km ~threshold left right =
    let index = create right in
    let left = List.sort_uniq String.compare left in
    List.concat_map
      (fun l ->
        query index ~km ~threshold l
        |> List.map (fun (r, score) -> (l, r, score)))
      left
end

let bench_scale ~folds:_ ~n () =
  let module Sim = Dlearn_similarity.Sim_index in
  let tuples = (match n with Some v -> v | None -> 100) * 1000 in
  let jobs = max 2 !bench_jobs in
  let sweep_jobs =
    let steps = List.filter (fun j -> j <= jobs) [ 4; 8 ] in
    let steps = if List.mem jobs steps then steps else steps @ [ jobs ] in
    1 :: steps
  in
  let km = 5 and threshold = 0.9 in
  Printf.printf
    "== Scale: streaming storage + sharded Sim_index (tuples=%d, jobs sweep \
     %s) ==\n\
     %!"
    tuples
    (String.concat "/" (List.map string_of_int sweep_jobs));
  let best_of k f =
    List.fold_left (fun acc _ -> Float.min acc (f ())) (f ())
      (List.init (k - 1) Fun.id)
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let rss_kb () = Option.value (Dlearn_obs.Obs.peak_rss_kb ()) ~default:0 in
  let top_heap_mb () =
    float_of_int (Gc.quick_stat ()).Gc.top_heap_words
    *. float_of_int (Sys.word_size / 8)
    /. 1_048_576.0
  in
  (* Phase 1: generate the dataset on disk. *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dlearn-scale-%d" tuples)
  in
  let gen_s, summary =
    time (fun () ->
        Scale_gen.generate ~config:{ Scale_gen.default with tuples } dir)
  in
  Printf.printf "generated %d rows x2 (%d bytes) in %.2fs -> %s\n%!" tuples
    summary.Scale_gen.bytes gen_s dir;
  (* Phase 2: ingestion. Peak RSS (VmHWM) and top_heap are high-water
     marks, so the lean phase must run first: stream, record, then
     materialize and record again. *)
  let bytes_c = Dlearn_obs.Obs.counter "storage.bytes_streamed" in
  let bytes0 = Dlearn_obs.Obs.value bytes_c in
  let stream_s, stream_rows =
    time (fun () ->
        List.fold_left
          (fun acc name ->
            Storage.scan dir name ~init:acc ~f:(fun acc _tu -> acc + 1))
          0
          [ Scale_gen.src_name; Scale_gen.dst_name ])
  in
  let stream_bytes = Dlearn_obs.Obs.value bytes_c - bytes0 in
  let stream_rss = rss_kb () and stream_heap = top_heap_mb () in
  let mat_s, db = time (fun () -> Storage.load dir) in
  let mat_tuples = Database.total_tuples db in
  let mat_rss = rss_kb () and mat_heap = top_heap_mb () in
  Printf.printf
    "stream:      %.2fs  %d rows (%d bytes), peak rss %d kB, top heap %.1f MB\n\
     materialize: %.2fs  %d tuples, peak rss %d kB, top heap %.1f MB\n\
     %!"
    stream_s stream_rows stream_bytes stream_rss stream_heap mat_s mat_tuples
    mat_rss mat_heap;
  if stream_rows <> 2 * tuples || mat_tuples <> 2 * tuples then
    failwith "bench scale: row counts disagree";
  let titles rel_name =
    Relation.distinct_values (Database.find db rel_name) Scale_gen.title_pos
    |> List.filter_map (fun v ->
           if Value.is_null v then None else Some (Value.as_string v))
  in
  let right = titles Scale_gen.dst_name in
  let left_all = titles Scale_gen.src_name in
  let nvalues = List.length right in
  (* Phase 3: index build, legacy vs sharded across the jobs sweep. *)
  let legacy_build_s =
    best_of 2 (fun () -> fst (time (fun () -> Legacy_index.create right)))
  in
  let digest1 = Sim.postings_digest (Sim.create ~jobs:1 right) in
  let build_sweep =
    List.map
      (fun j ->
        ignore (Dlearn_parallel.Pool.get j);
        let s =
          best_of 2 (fun () -> fst (time (fun () -> Sim.create ~jobs:j right)))
        in
        (j, s))
      sweep_jobs
  in
  let deterministic =
    List.for_all
      (fun j -> Sim.postings_digest (Sim.create ~jobs:j right) = digest1)
      sweep_jobs
  in
  let build1 = List.assoc 1 build_sweep in
  let shard_index = Sim.create ~jobs:jobs right in
  Printf.printf "index build (%d values, %d shards): legacy %.3fs" nvalues
    (Sim.shard_count shard_index) legacy_build_s;
  List.iter
    (fun (j, s) ->
      Printf.printf "  %dd %.3fs (%.2fx legacy, %.2fx par)" j s
        (legacy_build_s /. s) (build1 /. s))
    build_sweep;
  Printf.printf "  deterministic=%b\n%!" deterministic;
  (* Phase 4: query throughput over a sample of clean-side titles. *)
  let sample k xs =
    let n = List.length xs in
    let step = max 1 (n / k) in
    List.filteri (fun i _ -> i mod step = 0) xs |> List.filteri (fun i _ -> i < k)
  in
  let queries = sample (max 50 (min 300 (tuples / 400))) left_all in
  let nq = List.length queries in
  let legacy = Legacy_index.create right in
  let legacy_query_s, legacy_hits =
    time (fun () ->
        List.map (fun q -> Legacy_index.query legacy ~km ~threshold q) queries)
  in
  let shard_query_s, shard_hits =
    time (fun () ->
        List.map (fun q -> Sim.query shard_index ~km ~threshold q) queries)
  in
  let query_agree = legacy_hits = shard_hits in
  Printf.printf
    "query x%d: legacy %.3fs, sharded %.3fs (%.2fx, %.0f q/s), agree=%b\n%!"
    nq legacy_query_s shard_query_s
    (legacy_query_s /. shard_query_s)
    (float_of_int nq /. shard_query_s)
    query_agree;
  (* Phase 5: match_pairs — build plus one query per left value. *)
  let left = sample (max 50 (min 200 (tuples / 500))) left_all in
  let nleft = List.length left in
  let legacy_match_s, legacy_pairs =
    time (fun () -> Legacy_index.match_pairs ~km ~threshold left right)
  in
  let match_sweep =
    List.map
      (fun j ->
        let s, pairs =
          time (fun () -> Sim.match_pairs ~jobs:j ~km ~threshold left right)
        in
        (j, s, pairs))
      sweep_jobs
  in
  let match1 =
    match match_sweep with (_, s, _) :: _ -> s | [] -> assert false
  in
  let match_agree =
    List.for_all (fun (_, _, pairs) -> pairs = legacy_pairs) match_sweep
  in
  Printf.printf "match_pairs x%d (%d pairs): legacy %.3fs" nleft
    (List.length legacy_pairs) legacy_match_s;
  List.iter
    (fun (j, s, _) ->
      Printf.printf "  %dd %.3fs (%.2fx legacy, %.2fx par)" j s
        (legacy_match_s /. s) (match1 /. s))
    match_sweep;
  Printf.printf "  agree=%b\n%!" match_agree;
  if not (deterministic && query_agree && match_agree) then
    failwith "bench scale: sharded index disagrees with the legacy baseline";
  (* Machine-readable record of the perf trajectory. *)
  let oc = open_out "BENCH_scale.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"scale\",\n\
    \  \"tuples\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"generate\": {\"seconds\": %.6f, \"bytes\": %d, \"rows\": %d, \
     \"duplicates\": %d, \"corrupted_titles\": %d},\n"
    tuples jobs gen_s summary.Scale_gen.bytes (2 * tuples)
    summary.Scale_gen.duplicates summary.Scale_gen.corrupted;
  Printf.fprintf oc
    "  \"ingest\": {\n\
    \    \"stream\": {\"seconds\": %.6f, \"rows\": %d, \"bytes\": %d, \
     \"rows_per_s\": %.0f, \"peak_rss_kb\": %d, \"top_heap_mb\": %.1f},\n\
    \    \"materialize\": {\"seconds\": %.6f, \"tuples\": %d, \
     \"peak_rss_kb\": %d, \"top_heap_mb\": %.1f},\n\
    \    \"stream_rss_below_materialize\": %b},\n"
    stream_s stream_rows stream_bytes
    (float_of_int stream_rows /. stream_s)
    stream_rss stream_heap mat_s mat_tuples mat_rss mat_heap
    (stream_rss < mat_rss || stream_heap < mat_heap);
  let sweep_json fmt_name legacy_s base sweep =
    String.concat ", "
      (List.map
         (fun (j, s) ->
           Printf.sprintf
             "{\"jobs\": %d, \"%s\": %.6f, \"speedup_vs_legacy\": %.3f, \
              \"speedup_parallel\": %.3f}"
             j fmt_name s (legacy_s /. s) (base /. s))
         sweep)
  in
  Printf.fprintf oc
    "  \"index_build\": {\"values\": %d, \"shards\": %d, \"legacy_seq_s\": \
     %.6f,\n\
    \    \"sweep\": [%s],\n\
    \    \"deterministic_across_jobs\": %b},\n"
    nvalues
    (Sim.shard_count shard_index)
    legacy_build_s
    (sweep_json "seconds" legacy_build_s build1 build_sweep)
    deterministic;
  Printf.fprintf oc
    "  \"query\": {\"queries\": %d, \"km\": %d, \"threshold\": %.2f, \
     \"legacy_s\": %.6f, \"sharded_s\": %.6f, \"speedup_vs_legacy\": %.3f, \
     \"sharded_qps\": %.0f, \"results_agree\": %b},\n"
    nq km threshold legacy_query_s shard_query_s
    (legacy_query_s /. shard_query_s)
    (float_of_int nq /. shard_query_s)
    query_agree;
  Printf.fprintf oc
    "  \"match_pairs\": {\"left\": %d, \"pairs\": %d, \"legacy_s\": %.6f,\n\
    \    \"sweep\": [%s],\n\
    \    \"results_agree\": %b}%s}\n"
    nleft
    (List.length legacy_pairs)
    legacy_match_s
    (sweep_json "seconds" legacy_match_s match1
       (List.map (fun (j, s, _) -> (j, s)) match_sweep))
    match_agree (obs_field ());
  close_out oc;
  Printf.printf "wrote BENCH_scale.json\n\n"

(* ------------------------------------------------------------------ *)
(* Serve: warm-state learn latency after a small committed delta vs a
   cold from-scratch run (ISSUE: the long-lived service must beat
   restarting the CLI by >= 5x on imdb3 while learning byte-identical
   definitions). Both sides go through the serve request path
   ([Server.handle]), so the comparison isolates the warm caches: the
   cold run pays every bottom clause, ground repair enumeration and
   verdict from nothing; the warm run pays only what the delta's
   monotone invalidation dropped. Emits BENCH_serve.json. *)

let bench_serve ~folds:_ ~n () =
  let open Dlearn_serve in
  let jobs = max 2 !bench_jobs in
  Printf.printf "== Serve: warm learn after a delta vs cold restart ==\n%!";
  let base = Imdb_omdb.generate ?n `Three_mds in
  let fresh () =
    let w = Experiment.with_jobs base jobs in
    { w with Workload.db = Database.copy w.Workload.db }
  in
  (* The delta: one movie whose values appear nowhere else, so the
     invalidation stays small — the serve loop's intended workload shape
     (a trickle of new tuples between learns). *)
  let delta = [ "tt99990"; "Bench Delta Movie (2099)"; "y2099" ] in
  let learn_req = Protocol.request "learn" [] in
  let clauses_of resp =
    match Json.list_field "clauses" resp with
    | Some items ->
        List.map
          (function Json.String s -> s | _ -> failwith "bad clause") items
    | None -> failwith "learn failed"
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  (* Cold: a fresh state over a database that already holds the delta —
     what restarting the CLI after the insert would compute. *)
  let cold_w = fresh () in
  ignore
    (Relation.insert
       (Database.find cold_w.Workload.db "imdb_movies")
       (Tuple.of_strings delta));
  let cold_state = Server.create cold_w in
  let cold_s, cold_resp = time (fun () -> Server.handle cold_state learn_req) in
  let cold_clauses = clauses_of cold_resp in
  (* Warm: prime a server, commit the delta through the insert op, learn
     again on the surviving caches. *)
  let warm_state = Server.create (fresh ()) in
  let prime_s, _ = time (fun () -> Server.handle warm_state learn_req) in
  let insert_resp =
    Server.handle warm_state
      (Protocol.request "insert"
         [
           ("relation", Json.String "imdb_movies");
           ("values", Json.List (List.map (fun s -> Json.String s) delta));
         ])
  in
  if not (Protocol.is_ok insert_resp) then
    failwith ("bench serve: insert failed: "
              ^ Protocol.error_of_response insert_resp);
  let invalidated =
    match Json.int_field "invalidated" insert_resp with
    | Some v -> v
    | None -> -1
  in
  let warm_s, warm_resp = time (fun () -> Server.handle warm_state learn_req) in
  let warm_clauses = clauses_of warm_resp in
  let identical = warm_clauses = cold_clauses in
  let speedup = cold_s /. warm_s in
  Printf.printf
    "cold learn %.3fs | prime %.3fs | delta invalidated %d examples | warm \
     learn %.3fs (%.1fx) | identical=%b\n%!"
    cold_s prime_s invalidated warm_s speedup identical;
  if not identical then
    failwith "bench serve: warm definition differs from the cold run";
  if speedup < 5.0 then
    failwith
      (Printf.sprintf "bench serve: warm speedup %.1fx is below the 5x floor"
         speedup);
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"serve\",\n\
    \  \"dataset\": \"imdb3\",\n\
    \  \"n\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"cold_learn_s\": %.6f,\n\
    \  \"prime_learn_s\": %.6f,\n\
    \  \"delta\": {\"relation\": \"imdb_movies\", \"invalidated_examples\": \
     %d},\n\
    \  \"warm_learn_s\": %.6f,\n\
    \  \"speedup_warm_vs_cold\": %.3f,\n\
    \  \"definitions_identical\": %b,\n\
    \  \"clauses\": %d%s}\n"
    (match n with Some v -> v | None -> -1)
    jobs cold_s prime_s invalidated warm_s speedup identical
    (List.length warm_clauses)
    (obs_field ());
  close_out oc;
  Printf.printf "wrote BENCH_serve.json\n\n"

(* ------------------------------------------------------------------ *)

let all_benches =
  [
    ("table4", table4);
    ("table5", table5);
    ("table6", table6);
    ("table7", table7);
    ("fig1left", fig1left);
    ("fig1mid", fig1mid);
    ("fig1right", fig1right);
    ("defs", defs);
    ("ablation-beam", ablation_beam);
    ("ablation-size", ablation_clause_size);
    ("parallel", bench_parallel);
    ("coverage", bench_coverage);
    ("subsumption", bench_subsumption);
    ("normalize", bench_normalize);
    ("scale", bench_scale);
    ("serve", bench_serve);
  ]

let usage ?(code = 1) () =
  Printf.printf
    "usage: main.exe [%s|micro|all] [--folds K] [--n N] [--jobs N] \
     [--engine csp|backtrack|sat] [--report]\n"
    (String.concat "|" (List.map fst all_benches));
  exit code

let () =
  let folds = ref 5 in
  (* Default scale: 100 underlying entities per workload — large enough
     for 5-fold cross validation, small enough that the full suite runs
     in well under an hour. *)
  let n = ref (Some 100) in
  let which = ref "all" in
  let rec parse = function
    | [] -> ()
    | "--help" :: _ | "-h" :: _ -> usage ~code:0 ()
    | "--folds" :: v :: rest ->
        folds := int_of_string v;
        parse rest
    | "--n" :: v :: rest ->
        n := Some (int_of_string v);
        parse rest
    | "--jobs" :: v :: rest ->
        (* Both the bench's own comparison and every context the table
           drivers create below (Config.default reads the variable). *)
        bench_jobs := int_of_string v;
        Unix.putenv "DLEARN_NUM_DOMAINS" v;
        parse rest
    | "--engine" :: v :: rest ->
        (match Dlearn_logic.Subsumption.engine_of_string v with
        | Some e -> bench_engine := Some e
        | None ->
            Printf.printf "unknown engine %s\n" v;
            usage ());
        parse rest
    | "--report" :: rest ->
        bench_report := true;
        parse rest
    | name :: rest when name.[0] <> '-' ->
        which := name;
        parse rest
    | other :: _ ->
        Printf.printf "unknown option %s\n" other;
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* Spans short-circuit by default; benches read span histograms (e.g.
     [bench_normalize]'s learn.normalize share), so keep them fed. *)
  Dlearn_obs.Obs.set_metrics true;
  (* Per-run progress lines from the experiment driver (Logs.app). *)
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.App);
  let folds = !folds and n = !n in
  match !which with
  | "all" ->
      List.iter (fun (name, f) -> timed name (f ~folds ~n)) all_benches;
      run_micro ()
  | "micro" -> run_micro ()
  | name -> (
      match List.assoc_opt name all_benches with
      | Some f -> timed name (f ~folds ~n)
      | None -> usage ())
