(** Functional-dependency discovery (TANE-style levelwise search).

    The paper assumes constraints "may be provided by users or discovered
    from the data using profiling techniques" (§2.2, [1]); this module is
    that profiling step for plain FDs: it finds the minimal FDs [X → A]
    with [|X| ≤ max_lhs] that hold exactly in a relation instance,
    checking candidates through partition refinement. *)

type fd = {
  lhs : string list;  (** attribute names, sorted *)
  rhs : string;
}

(** [discover ?max_lhs relation] lists the minimal FDs holding in
    [relation] ([max_lhs] defaults to 2). Trivial FDs (rhs ∈ lhs) are
    excluded; an FD is reported only if no subset of its lhs already
    determines the rhs. A relation with fewer than 2 tuples satisfies
    every FD and yields the single-attribute keys only. *)
val discover : ?max_lhs:int -> Dlearn_relation.Relation.t -> fd list

(** [holds relation lhs rhs] checks one FD by grouping. *)
val holds : Dlearn_relation.Relation.t -> string list -> string -> bool

(** [to_cfd ~id relation_name fd] converts to a pattern-free CFD. *)
val to_cfd : id:string -> string -> fd -> Dlearn_constraints.Cfd.t
