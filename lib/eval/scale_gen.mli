(** Deterministic scaled-workload generator (ROADMAP item 5).

    Emits a two-relation entity-matching dataset — [src_products]
    (clean, supplier side) and [dst_products] (dirty, marketplace side)
    — straight to disk in {!Dlearn_relation.Storage} layout
    (manifest + CSVs), never holding the relations in memory. Row [i]
    of both relations describes the same entity; the marketplace twin's
    title and brand are corrupted at [dirt_rate] with the shared
    {!Corrupt} kit (case/suffix variants and seeded typos), which is
    the paper's Walmart/Amazon setting at 10⁵–10⁶ tuples.

    Determinism: the value universe is a pure function of [vocab], row
    sampling a pure function of [seed] — equal configs produce
    byte-identical datasets. Brand and head-noun frequencies are
    Zipf-skewed with exponent [zipf_s] (skew is what stresses the
    similarity index: hot grams get long posting lists). See
    docs/SCALE.md for how the knobs map to bench scenarios. *)

type config = {
  tuples : int;  (** rows per relation *)
  dirt_rate : float;  (** per-field corruption probability, in [0, 1] *)
  duplicate_rate : float;
      (** probability a row duplicates the previous entity under a fresh
          pid, in [0, 1] *)
  zipf_s : float;  (** Zipf exponent for brand / head-noun skew *)
  vocab : int;  (** distinct nouns (brands scale as vocab/8) *)
  seed : int;
}

(** 10⁵ tuples, 10% dirt, 5% duplicates, s = 1.1, vocab 512. *)
val default : config

type summary = {
  dir : string;
  relations : (string * int) list;  (** rows per relation *)
  bytes : int;  (** CSV bytes written *)
  duplicates : int;  (** rows that duplicated the previous entity *)
  corrupted : int;  (** marketplace rows whose title differs *)
}

val src_name : string
val dst_name : string

(** Position of the [title] attribute in both schemas. *)
val title_pos : int

(** [generate ?config dir] writes the dataset into [dir] (created if
    needed) and returns what it wrote. Counter: [scale_gen.rows_written].
    @raise Invalid_argument on out-of-range config fields. *)
val generate : ?config:config -> string -> summary

val pp_summary : Format.formatter -> summary -> unit
