let check_clause db ?target clause =
  Clause_lint.check clause @ Schema_check.check db ?target clause

let check_constraints db ~mds ~cfds = Constraint_check.check db ~mds ~cfds

let preflight db ?target ~mds ~cfds clauses =
  check_constraints db ~mds ~cfds
  @ List.concat_map (check_clause db ?target) clauses

exception Rejected of Diagnostic.t list

let () =
  Printexc.register_printer (function
    | Rejected ds ->
        Some ("preflight failed:\n" ^ Diagnostic.report_to_string ds)
    | _ -> None)

let reject_on_errors ds = if Diagnostic.has_errors ds then raise (Rejected ds)
