open Dlearn_relation
open Dlearn_logic

let domain_to_string = function
  | Schema.Dint -> "int"
  | Schema.Dfloat -> "float"
  | Schema.Dstring -> "string"

let value_fits domain v =
  match v, domain with
  | Value.Null, _ -> true
  | Value.Int _, Schema.Dint
  | Value.Float _, Schema.Dfloat
  | Value.String _, Schema.Dstring ->
      true
  | (Value.Int _ | Value.Float _ | Value.String _), _ -> false

let schema_for db target pred =
  match target with
  | Some t when String.equal (Schema.name t) pred -> Some t
  | _ -> Option.map Relation.schema (Database.find_opt db pred)

let check db ?target clause =
  let subject = Diagnostic.Clause_head (Clause.head_pred clause) in
  let diagnostics = ref [] in
  let add d = diagnostics := d :: !diagnostics in
  (* First occurrence of each variable at an attribute with a known
     domain: var -> (domain, "rel.attr"). *)
  let var_domains = Hashtbl.create 16 in
  let check_atom ~is_head pred args =
    match schema_for db target pred with
    | None ->
        if not is_head then
          add
            (Diagnostic.error ~code:"DL201" ~subject ~witness:pred
               (Printf.sprintf "unknown predicate %s: no such relation in \
                                the catalog" pred))
        else if target <> None then
          add
            (Diagnostic.hint ~code:"DL206" ~subject ~witness:pred
               (Printf.sprintf
                  "head predicate %s is not the configured target relation"
                  pred))
    | Some schema ->
        if Array.length args <> Schema.arity schema then
          add
            (Diagnostic.error ~code:"DL202" ~subject
               ~witness:
                 (Printf.sprintf "%s/%d vs schema arity %d" pred
                    (Array.length args) (Schema.arity schema))
               (Printf.sprintf
                  "atom %s has %d arguments but relation %s has arity %d"
                  pred (Array.length args) pred (Schema.arity schema)))
        else
          Array.iteri
            (fun i arg ->
              let domain = Schema.domain schema i in
              let site =
                Printf.sprintf "%s.%s" pred (Schema.attr_name schema i)
              in
              match arg with
              | Term.Const v ->
                  if not (value_fits domain v) then
                    add
                      (Diagnostic.error ~code:"DL203" ~subject
                         ~witness:
                           (Printf.sprintf "%s at %s"
                              (Term.to_string arg) site)
                         (Printf.sprintf
                            "constant %s does not fit the %s domain of %s"
                            (Term.to_string arg) (domain_to_string domain)
                            site))
              | Term.Var v -> (
                  match Hashtbl.find_opt var_domains v with
                  | None -> Hashtbl.add var_domains v (domain, site)
                  | Some (d0, site0) ->
                      if d0 <> domain then
                        add
                          (Diagnostic.error ~code:"DL205" ~subject
                             ~witness:
                               (Printf.sprintf "%s: %s at %s vs %s at %s" v
                                  (domain_to_string d0) site0
                                  (domain_to_string domain) site)
                             (Printf.sprintf
                                "variable %s is used at attributes of \
                                 conflicting domains; the join can never \
                                 succeed"
                                v))))
            args
  in
  (match clause.Clause.head with
  | Literal.Rel { pred; args } -> check_atom ~is_head:true pred args
  | _ -> ());
  List.iter
    (function
      | Literal.Rel { pred; args } -> check_atom ~is_head:false pred args
      | _ -> ())
    clause.Clause.body;
  (* Similarity operands must be strings: ≈ is defined per string domain. *)
  let check_sim_operand l t =
    match t with
    | Term.Const (Value.String _) | Term.Const Value.Null -> ()
    | Term.Const v ->
        add
          (Diagnostic.error ~code:"DL204" ~subject
             ~witness:(Literal.to_string l)
             (Printf.sprintf
                "similarity literal applies to non-string constant %s"
                (Value.to_string v)))
    | Term.Var v -> (
        match Hashtbl.find_opt var_domains v with
        | Some (domain, site) when domain <> Schema.Dstring ->
            add
              (Diagnostic.error ~code:"DL204" ~subject
                 ~witness:(Printf.sprintf "%s (%s at %s)"
                             (Literal.to_string l)
                             (domain_to_string domain) site)
                 (Printf.sprintf
                    "similarity literal applies to variable %s drawn from \
                     a non-string attribute"
                    v))
        | _ -> ())
  in
  List.iter
    (function
      | Literal.Sim (a, b) as l ->
          check_sim_operand l a;
          check_sim_operand l b
      | _ -> ())
    clause.Clause.body;
  List.rev !diagnostics
