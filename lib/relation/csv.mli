(** Minimal delimited-text import/export for relations.

    Uses a configurable single-character delimiter (default [','].) Fields
    containing the delimiter, double quotes or newlines are quoted with
    ["..."] and embedded quotes doubled, per RFC 4180's core rules. This is
    enough to round-trip the generated workloads and to let users load
    their own extracts.

    Reading is streaming: the file is scanned in fixed-size chunks with a
    reused field buffer, so {!fold} / {!iter} process a 10⁵–10⁶-tuple CSV
    without materializing the file or a per-line string (docs/SCALE.md).
    Two counters in the metrics registry track progress:
    [storage.rows_streamed] and [storage.bytes_streamed]. *)

(** [parse_line ?delim s] splits one record into fields. *)
val parse_line : ?delim:char -> string -> string list

(** [render_line ?delim fields] renders one record (no trailing newline). *)
val render_line : ?delim:char -> string list -> string

(** [fold_records ?delim path ~init ~f] streams every raw record of
    [path] through [f acc line_no fields] — the schema-free layer under
    {!fold}. Line numbers are 1-based and count blank (skipped) lines,
    so they match what an editor shows. *)
val fold_records :
  ?delim:char ->
  string ->
  init:'a ->
  f:('a -> int -> string list -> 'a) ->
  'a

(** [fold ?delim schema path ~init ~f] streams every record of [path]
    through [f], in file order, without building a relation. Records are
    one per line (CRLF accepted; embedded newlines in fields are not
    supported by the reader); blank lines are skipped; each field is
    parsed with {!Value.of_string}.
    @raise Invalid_argument on an arity mismatch (with the line number). *)
val fold :
  ?delim:char -> Schema.t -> string -> init:'a -> f:('a -> Tuple.t -> 'a) -> 'a

(** [iter ?delim schema path ~f] is {!fold} for effects. *)
val iter : ?delim:char -> Schema.t -> string -> f:(Tuple.t -> unit) -> unit

(** [load ?delim schema path] reads every record into a fresh relation —
    {!fold} plus {!Relation.insert}.
    @raise Invalid_argument on an arity mismatch (with the line number). *)
val load : ?delim:char -> Schema.t -> string -> Relation.t

(** [save ?delim relation path] writes one record per tuple. *)
val save : ?delim:char -> Relation.t -> string -> unit
