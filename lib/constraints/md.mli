(** Matching dependencies (§2.2).

    An MD [R1\[A1..An\] ≈ R2\[B1..Bn\] → R1\[C\] ⇌ R2\[D\]] states that
    when the compared attribute pairs are pairwise similar, the values of
    the unified attribute pair refer to the same value and are
    interchangeable. Following the paper we assume one unified pair per MD
    (a multi-pair MD is equivalent to a set of such MDs). *)

type t = {
  id : string;
  left_rel : string;
  right_rel : string;
  compared : (string * string) list;
      (** attribute pairs (Ai, Bi) whose similarity triggers the MD *)
  unified : string * string;  (** the (C, D) pair made interchangeable *)
  threshold_override : float option;
      (** per-MD similarity threshold — the paper's [≈_d] is defined per
          domain (§2.2), so an MD over person names may use a stricter
          operator than one over titles; [None] uses the global spec *)
}

(** Parameters of the similarity operator [≈] used when enforcing MDs. *)
type sim_spec = {
  measure : Dlearn_similarity.Combined.measure;
  threshold : float;
}

val default_sim : sim_spec
(** The paper's operator at threshold 0.6. *)

(** [make ~id ~left ~right ~compared ~unified] builds an MD.
    @raise Invalid_argument if [compared] is empty. *)
val make :
  id:string ->
  left:string ->
  right:string ->
  compared:(string * string) list ->
  unified:string * string ->
  ?threshold:float ->
  unit ->
  t

(** [symmetric ~id rel1 rel2 attr] is the common single-attribute MD
    [rel1\[attr\] ≈ rel2\[attr\] → rel1\[attr\] ⇌ rel2\[attr\]]. *)
val symmetric : ?threshold:float -> id:string -> string -> string -> string -> t

(** [effective_spec t spec] is [spec] with the MD's threshold override
    applied. *)
val effective_spec : t -> sim_spec -> sim_spec

(** [similar spec a b] applies the MD similarity operator to two values.
    Values produced by a previous merge ({!Merge.is_merged}) are only
    similar to equal values — fresh merged values carry no heterogeneity. *)
val similar : sim_spec -> Dlearn_relation.Value.t -> Dlearn_relation.Value.t -> bool

(** [mentions t rel] holds when [rel] is one of the MD's relations. *)
val mentions : t -> string -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Canonical fresh values [v_{a,b}] created by matching two values
    (§2.2): the merge of two values is a value recording the sorted set of
    base values it unifies, so that repeated merging is associative,
    commutative and idempotent — which makes stable-instance enumeration
    deterministic up to application order. *)
module Merge : sig
  val merge : Dlearn_relation.Value.t -> Dlearn_relation.Value.t -> Dlearn_relation.Value.t

  val is_merged : Dlearn_relation.Value.t -> bool

  (** [components v] lists the base strings a merged value unifies;
      a non-merged value is its own single component. *)
  val components : Dlearn_relation.Value.t -> string list
end
