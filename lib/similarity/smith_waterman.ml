type params = {
  match_score : float;
  mismatch_score : float;
  gap_open : float;
  gap_extend : float;
}

let default_params =
  { match_score = 1.0; mismatch_score = -2.0; gap_open = -0.5; gap_extend = -0.2 }

(* Gotoh's O(n*m) recurrence with two rolling rows per matrix:
   h: best local alignment ending at (i, j);
   e: best ending with a gap in [a] (horizontal move);
   f: best ending with a gap in [b] (vertical move). *)
let raw_score ?(params = default_params) a b =
  let n = String.length a and m = String.length b in
  if n = 0 || m = 0 then 0.0
  else begin
    let h_prev = Array.make (m + 1) 0.0 in
    let h_curr = Array.make (m + 1) 0.0 in
    let f = Array.make (m + 1) neg_infinity in
    let best = ref 0.0 in
    for i = 1 to n do
      h_curr.(0) <- 0.0;
      let e = ref neg_infinity in
      for j = 1 to m do
        e := Float.max (h_curr.(j - 1) +. params.gap_open) (!e +. params.gap_extend);
        f.(j) <- Float.max (h_prev.(j) +. params.gap_open) (f.(j) +. params.gap_extend);
        let s =
          if a.[i - 1] = b.[j - 1] then params.match_score
          else params.mismatch_score
        in
        let diag = h_prev.(j - 1) +. s in
        let v = Float.max 0.0 (Float.max diag (Float.max !e f.(j))) in
        h_curr.(j) <- v;
        if v > !best then best := v
      done;
      Array.blit h_curr 0 h_prev 0 (m + 1)
    done;
    !best
  end

let similarity ?(params = default_params) a b =
  let n = String.length a and m = String.length b in
  if n = 0 || m = 0 then 0.0
  else begin
    let max_score = params.match_score *. float_of_int (min n m) in
    let s = raw_score ~params a b /. max_score in
    Float.min 1.0 (Float.max 0.0 s)
  end
