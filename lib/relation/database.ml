(* A relation slot is either materialized or a pending loader thunk
   ([Storage.load ~lazy_load:true] registers these). The fast path —
   every lookup in a fully-loaded database — is the plain [Hashtbl.find]
   it always was, guarded by one atomic load of [pending]: while any
   thunk is outstanding, {b every} lookup detours through the lock, so a
   reader can never race [force]'s [Hashtbl.replace] (the table may be
   mid-bucket-mutation when several relations force concurrently). The
   atomic's release/acquire ordering publishes the replaced entries: a
   reader that observes [pending = 0] observes every [Loaded] slot. *)

type entry = Loaded of Relation.t | Pending of (unit -> Relation.t)

type t = {
  by_name : (string, entry) Hashtbl.t;
  mutable order : string list; (* reverse registration order *)
  pending : int Atomic.t;
  lock : Mutex.t;
}

let create () =
  {
    by_name = Hashtbl.create 16;
    order = [];
    pending = Atomic.make 0;
    lock = Mutex.create ();
  }

let register t name entry =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Database.add_relation: duplicate %s" name);
  Hashtbl.add t.by_name name entry;
  t.order <- name :: t.order

let add_relation t r = register t (Relation.name r) (Loaded r)

let add_lazy t name load =
  register t name (Pending load);
  Atomic.incr t.pending

let create_relation t schema =
  let r = Relation.create schema in
  add_relation t r;
  r

let force t name =
  Mutex.protect t.lock (fun () ->
      (* Re-check under the lock: another caller may have forced it. *)
      match Hashtbl.find_opt t.by_name name with
      | Some (Loaded r) -> r
      | Some (Pending load) ->
          let r = load () in
          if Relation.name r <> name then
            invalid_arg
              (Printf.sprintf "Database: lazy loader for %s produced %s" name
                 (Relation.name r));
          Hashtbl.replace t.by_name name (Loaded r);
          Atomic.decr t.pending;
          r
      | None -> raise Not_found)

(* While thunks remain, even lookups of already-loaded relations take the
   lock: an unlocked [Hashtbl.find_opt] could observe the table mid-way
   through a concurrent [force]'s [Hashtbl.replace]. *)
let find t name =
  if Atomic.get t.pending = 0 then
    match Hashtbl.find_opt t.by_name name with
    | Some (Loaded r) -> r
    | Some (Pending _) | None ->
        (* A thunk registered after the atomic read; settle under lock. *)
        force t name
  else force t name

let find_opt t name = match find t name with
  | r -> Some r
  | exception Not_found -> None

let mem t name = Hashtbl.mem t.by_name name

let is_loaded t name =
  let probe () =
    match Hashtbl.find_opt t.by_name name with
    | Some (Loaded _) -> true
    | Some (Pending _) | None -> false
  in
  if Atomic.get t.pending = 0 then probe ()
  else Mutex.protect t.lock probe

let pending_count t = Atomic.get t.pending
let relation_names t = List.rev t.order
let relations t = List.map (find t) (relation_names t)

let materialize t =
  List.iter (fun name -> ignore (find t name)) (relation_names t)

(* The three summaries below must never force a pending relation —
   printing or copying a lazily-loaded database would otherwise
   materialize it, defeating the streaming-RSS point of lazy loading. *)

let fold_entries t f init =
  let read () =
    List.fold_left
      (fun acc name ->
        match Hashtbl.find_opt t.by_name name with
        | Some entry -> f acc name entry
        | None -> acc)
      init (relation_names t)
  in
  if Atomic.get t.pending = 0 then read () else Mutex.protect t.lock read

(* Loaded relations only: pending entries count for zero rather than
   being forced. [pp_summary] reports them as pending. *)
let total_tuples t =
  fold_entries t
    (fun acc _ -> function
      | Loaded r -> acc + Relation.cardinality r
      | Pending _ -> acc)
    0

(* Loaded relations are deep-copied; pending ones stay pending in the
   copy, sharing the loader thunk (it re-runs on the copy's first
   access). *)
let copy t =
  let t' = create () in
  fold_entries t
    (fun () name -> function
      | Loaded r -> add_relation t' (Relation.copy r)
      | Pending load -> add_lazy t' name load)
    ();
  t'

let pp_summary fmt t =
  let pending = pending_count t in
  Format.fprintf fmt "@[<v>database: %d relations (%d pending), %d tuples"
    (List.length t.order) pending (total_tuples t);
  fold_entries t
    (fun () name -> function
      | Loaded r ->
          Format.fprintf fmt "@,  %a: %d tuples" Schema.pp (Relation.schema r)
            (Relation.cardinality r)
      | Pending _ -> Format.fprintf fmt "@,  %s: pending" name)
    ();
  Format.fprintf fmt "@]"

(* {2 Hooks for the versioned layer (Vdb)} *)

let snapshot t =
  let t' = create () in
  List.iter
    (fun name -> add_relation t' (Relation.snapshot (find t name)))
    (relation_names t);
  t'

let replace_relation t r =
  let name = Relation.name r in
  let swap () =
    match Hashtbl.find_opt t.by_name name with
    | Some (Loaded _) -> Hashtbl.replace t.by_name name (Loaded r)
    | Some (Pending _) | None ->
        invalid_arg
          (Printf.sprintf "Database.replace_relation: no loaded relation %s"
             name)
  in
  if Atomic.get t.pending = 0 then swap () else Mutex.protect t.lock swap
