open Dlearn_relation

type token =
  | Tident of string
  | Tstring of string
  | Tnumber of string
  | Tlparen
  | Trparen
  | Tcomma
  | Tarrow  (* <- or :- *)
  | Tsim  (* ~ *)
  | Teq  (* = *)
  | Tneq  (* != *)

exception Error of string

let fail pos msg = raise (Error (Printf.sprintf "at %d: %s" pos msg))

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let rec go i =
    if i >= n then ()
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '(' ->
          push Tlparen;
          go (i + 1)
      | ')' ->
          push Trparen;
          go (i + 1)
      | ',' ->
          push Tcomma;
          go (i + 1)
      | '~' ->
          push Tsim;
          go (i + 1)
      | '=' ->
          push Teq;
          go (i + 1)
      | '!' ->
          if i + 1 < n && s.[i + 1] = '=' then begin
            push Tneq;
            go (i + 2)
          end
          else fail i "expected != "
      | '<' | ':' ->
          if i + 1 < n && s.[i + 1] = '-' then begin
            push Tarrow;
            go (i + 2)
          end
          else fail i "expected <- or :-"
      | '"' ->
          let buf = Buffer.create 16 in
          let rec scan j =
            if j >= n then fail i "unterminated string"
            else if s.[j] = '\\' && j + 1 < n then begin
              Buffer.add_char buf s.[j + 1];
              scan (j + 2)
            end
            else if s.[j] = '"' then j + 1
            else begin
              Buffer.add_char buf s.[j];
              scan (j + 1)
            end
          in
          let next = scan (i + 1) in
          push (Tstring (Buffer.contents buf));
          go next
      | c when is_digit c || (c = '-' && i + 1 < n && is_digit s.[i + 1]) ->
          let j = ref (i + 1) in
          while
            !j < n && (is_digit s.[!j] || s.[!j] = '.' || s.[!j] = 'e' || s.[!j] = '-')
          do
            incr j
          done;
          push (Tnumber (String.sub s i (!j - i)));
          go !j
      | c when is_ident_start c ->
          let j = ref (i + 1) in
          while !j < n && is_ident_char s.[!j] do
            incr j
          done;
          push (Tident (String.sub s i (!j - i)));
          go !j
      | c -> fail i (Printf.sprintf "unexpected character %C" c)
  in
  go 0;
  List.rev !tokens

(* Recursive-descent over the token list. *)
let parse_clause tokens =
  let tokens = ref tokens in
  let peek () = match !tokens with [] -> None | t :: _ -> Some t in
  let advance () =
    match !tokens with
    | [] -> fail 0 "unexpected end of input"
    | t :: rest ->
        tokens := rest;
        t
  in
  let expect t msg = if advance () <> t then fail 0 msg in
  let term () =
    match advance () with
    | Tident x -> Term.Var x
    | Tstring s -> Term.Const (Value.String s)
    | Tnumber num -> Term.Const (Value.of_string num)
    | _ -> fail 0 "expected a term"
  in
  let atom name =
    expect Tlparen "expected (";
    let rec args acc =
      let t = term () in
      match advance () with
      | Tcomma -> args (t :: acc)
      | Trparen -> List.rev (t :: acc)
      | _ -> fail 0 "expected , or )"
    in
    Literal.Rel { pred = name; args = Array.of_list (args []) }
  in
  let literal () =
    match advance () with
    | Tident name when peek () = Some Tlparen -> atom name
    | (Tident _ | Tstring _ | Tnumber _) as t ->
        let left =
          match t with
          | Tident x -> Term.Var x
          | Tstring s -> Term.Const (Value.String s)
          | Tnumber num -> Term.Const (Value.of_string num)
          | _ -> assert false
        in
        let op = advance () in
        let right = term () in
        (match op with
        | Tsim -> Literal.Sim (left, right)
        | Teq -> Literal.Eq (left, right)
        | Tneq -> Literal.Neq (left, right)
        | _ -> fail 0 "expected ~, = or != after a term")
    | _ -> fail 0 "expected a literal"
  in
  let head =
    match advance () with
    | Tident name -> atom name
    | _ -> fail 0 "expected the head atom"
  in
  let body =
    match peek () with
    | None -> []
    | Some Tarrow ->
        ignore (advance ());
        (* "true" as an empty body marker *)
        if peek () = Some (Tident "true") then begin
          ignore (advance ());
          []
        end
        else begin
          let rec go acc =
            let l = literal () in
            match peek () with
            | Some Tcomma ->
                ignore (advance ());
                go (l :: acc)
            | _ -> List.rev (l :: acc)
          in
          go []
        end
    | Some _ -> fail 0 "expected <- or end of input"
  in
  if !tokens <> [] then fail 0 "trailing tokens after the clause";
  Clause.make ~head body

let clause s =
  match parse_clause (tokenize s) with
  | c -> Ok c
  | exception Error msg -> Result.Error msg
  | exception Invalid_argument msg -> Result.Error msg

let clause_exn s =
  match clause s with
  | Ok c -> c
  | Error msg -> invalid_arg ("Parser.clause: " ^ msg)
