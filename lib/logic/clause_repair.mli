(** Applying repair literals: from a clause with repair literals to its set
    of repaired clauses (§3.2).

    A repair literal [V_c(x, v_x)] is applied by evaluating [c] against the
    clause's restriction literals; if [c] holds, [x] is replaced by [v_x]
    in every literal (conditions of other repair literals included) and the
    literal's recorded induced/similarity literals are deleted; otherwise
    the literal is simply removed. Different application orders produce
    different repaired clauses (Example 3.3).

    Repair literals are organised in {e groups} — one group per similarity
    match (MD) or per constraint violation (CFD):
    - an MD group's literals fire {e simultaneously} (enforcing the MD
      makes both sides of the match identical in one step, Def. 2.2), and
      firing consumes the similarity literals that triggered it, which is
      what makes overlapping matches mutually exclusive;
    - a CFD group's literals are {e alternatives}: applying one falsifies
      the conditions of the others via the group's restriction literals.

    Enumeration branches over the order of groups whose term sets overlap
    and over the alternative within each CFD group; states are memoised on
    the canonical clause form, and both results and explored states are
    capped. *)

(** [repaired_clauses ?state_cap ?result_cap c] enumerates the repaired
    clauses of [c] (all repair literals applied or removed), deduplicated
    modulo body order. A clause without repair literals yields just its
    cleaned-up self. *)
val repaired_clauses :
  ?state_cap:int -> ?result_cap:int -> Clause.t -> Clause.t list

(** [cfd_applications ?state_cap ?result_cap c] applies only the groups
    originating from CFDs, leaving MD repair literals in place (they are
    handled by θ-subsumption directly, Theorem 4.9). Used by the coverage
    test of §4.3. *)
val cfd_applications :
  ?state_cap:int -> ?result_cap:int -> Clause.t -> Clause.t list

(** [is_repaired c] holds when [c] has no repair literal. *)
val is_repaired : Clause.t -> bool
