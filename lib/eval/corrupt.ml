(* The index is drawn per branch: a swap needs i+1 to be a valid
   position, so it draws from [0, n-2], while drop and duplicate may
   touch any character including the last — drawing one shared index
   from [0, n-2] would bias the corruption away from final characters. *)
let typo rng s =
  let n = String.length s in
  if n < 2 then s
  else
    match Random.State.int rng 3 with
    | 0 ->
        (* swap adjacent characters *)
        let i = Random.State.int rng (n - 1) in
        let b = Bytes.of_string s in
        let c = Bytes.get b i in
        Bytes.set b i (Bytes.get b (i + 1));
        Bytes.set b (i + 1) c;
        Bytes.to_string b
    | 1 ->
        (* drop one character *)
        let i = Random.State.int rng n in
        String.sub s 0 i ^ String.sub s (i + 1) (n - i - 1)
    | _ ->
        (* duplicate one character *)
        let i = Random.State.int rng n in
        String.sub s 0 i ^ String.make 1 s.[i] ^ String.sub s i (n - i)

let movie_title_variant rng ~title ~year =
  match Random.State.int rng 6 with
  | 0 | 1 -> Printf.sprintf "%s (%d)" title year
  | 2 -> Printf.sprintf "%s - %d" title year
  | 3 -> Printf.sprintf "%s [%d]" title year
  | 4 -> Printf.sprintf "%s: %d" title year
  | _ -> title

let abbreviate_name rng name =
  match String.index_opt name ' ' with
  | None -> name
  | Some i ->
      if Random.State.bool rng then
        Printf.sprintf "%c. %s" name.[0] (String.sub name (i + 1) (String.length name - i - 1))
      else name

(* Marketplace product titles never match the supplier's string exactly —
   the paper's Walmart/Amazon setting, where Castor-Exact gains nothing
   over Castor-NoMD. *)
let product_title_variant rng name =
  match Random.State.int rng 4 with
  | 0 -> String.uppercase_ascii name
  | 1 -> Printf.sprintf "%s - Retail" name
  | 2 -> Printf.sprintf "%s (Model %c%d)" name
           (Char.chr (Char.code 'A' + Random.State.int rng 5))
           (100 + Random.State.int rng 900)
  | _ -> String.lowercase_ascii name

let venue_variant rng venue =
  match Random.State.int rng 3 with
  | 0 -> venue
  | 1 ->
      (* "SIGMOD Conference" -> "SIGMOD Conf." *)
      if String.length venue > 6 && String.ends_with ~suffix:"Conference" venue
      then String.sub venue 0 (String.length venue - 6) ^ "."
      else venue
  | _ -> "Proc. " ^ venue

let maybe rng p f x = if Random.State.float rng 1.0 < p then f x else x
