(** Rendering clauses as SQL (§4.3: "transform the clause into a SQL query
    and evaluate it over the input database ... the SQL query will involve
    long joins").

    The translation targets a generic SQL dialect: one FROM entry per
    schema atom, WHERE equalities for shared variables and constants,
    [SIMILAR(a, b)] for similarity literals (a UDF the host system must
    provide — the paper registers its operator with VoltDB), and the head
    arguments as the SELECT list. It exists to document and exercise the
    size of the queries the subsumption engine avoids; nothing in the
    learner executes SQL. *)

(** [of_clause c] renders a repair-free clause.
    @raise Invalid_argument when [c] contains repair literals or a body
    atom repeats no variable usable for the SELECT list. *)
val of_clause : Dlearn_logic.Clause.t -> string
