(** Clause normalization and simplification (ROADMAP item 3).

    A multi-pass static-analysis pipeline over hypothesis clauses, run to
    fixpoint (see docs/NORMALIZATION.md for the pass order and the
    fixpoint/idempotence argument):

    + {b canonical variable renumbering} by iterative refinement over the
      variable-occurrence structure — all alpha-variants of a clause map
      to one representative, with individualization-refinement branching
      and a lexicographic tie-break so the result is deterministic across
      runs and domains;
    + {b deterministic literal ordering} (and ordering of the
      set-semantic lists inside repair literals: condition atoms and
      recorded drops);
    + {b duplicate-literal and tautology elimination}, mirroring the
      DL105/DL106 lints as rewrites, restricted to verdicts the
      subsumption engines make static: [x = x] is dropped, [x ≈ x] is
      dropped when the variable is generatively bound, [x ≠ x] rewrites
      the clause to a shared trivially-false form, trivially-true repair
      condition atoms are deleted;
    + {b condensation-lite}: a body literal whose strictly-local
      variables map it onto another body literal is dropped, bounded so
      the scan never dominates solve time.

    Rewrites never touch literals recorded in a repair literal's [drops]
    list: repair application deletes by {!Literal.equal} against those
    records before substituting, so altering either copy would change
    repair semantics.

    {b Cache-key contract}: [normalize] is idempotent and invariant under
    alpha-renaming and body reordering (up to the individualization
    budget, see [normalize.rename_fallbacks]), and preserves coverage —
    [Coverage] uses the normalized clause directly as the cover-cache key
    in {!module:Context} when [Config.normalize_clauses] is on.

    Counters: [normalize.clauses], [normalize.rounds],
    [normalize.duplicates], [normalize.tautologies],
    [normalize.cond_atoms], [normalize.contradictions],
    [normalize.condensed], [normalize.condense_capped],
    [normalize.rename_fallbacks]. Only {!normalize} bumps them; {!plan}
    is side-effect free. *)

(** One simplification step the pipeline applies (or, through {!plan},
    would apply). The analysis layer renders these as DL4xx diagnostics
    from the very same pass implementations, so lint and rewrite cannot
    disagree. *)
type rewrite =
  | Drop_duplicate of Literal.t  (** duplicate body literal *)
  | Drop_tautology of Literal.t  (** trivially-true literal ([x = x]...) *)
  | Drop_cond_atom of Literal.t * Cond.atom
      (** trivially-true atom inside a repair condition *)
  | Contradiction of Literal.t
      (** unsatisfiable literal ([x ≠ x]) — the clause covers nothing *)
  | Condense of {
      dropped : Literal.t;
      witness : Literal.t;
    }
      (** [dropped] maps onto [witness] under a substitution of its
          strictly-local variables *)

val rewrite_to_string : rewrite -> string

(** [normalize c] is the canonical representative of [c]: simplification
    passes to fixpoint, then canonical renaming and ordering. Idempotent;
    preserves the clause's coverage under every subsumption engine. *)
val normalize : Clause.t -> Clause.t

(** The rewrites {!normalize}'s simplification passes would apply to [c],
    without applying them and without touching the [normalize.*]
    counters. Renaming/reordering are not reported — they rewrite nothing
    a diagnostic could point at. *)
val plan : Clause.t -> rewrite list

(** [is_trivially_false c] holds when the body contains an unprotected
    [x ≠ x] literal — [normalize] maps such clauses to a shared
    falsum form (head over a single unsatisfiable restriction). *)
val is_trivially_false : Clause.t -> bool

(** Target-side preparation: remove exact duplicate literals from a
    ground (bottom) clause, preserving order. Restriction literals of a
    target are closure data, not checks, so this is the only rewrite that
    is sound on that side; it shrinks the candidate tables
    {!Subsumption.prepare} builds. *)
val dedup_target : Clause.t -> Clause.t
